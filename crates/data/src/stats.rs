//! Dataset summaries: per-attribute and per-class statistics.

use crate::dataset::{Column, Dataset};
use std::fmt::Write as _;

/// Summary of one numeric attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericSummary {
    /// Attribute name.
    pub name: String,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Unweighted mean.
    pub mean: f64,
    /// Unweighted standard deviation (population).
    pub std_dev: f64,
    /// Number of distinct values.
    pub distinct: usize,
}

/// Summary of one categorical attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoricalSummary {
    /// Attribute name.
    pub name: String,
    /// Vocabulary size.
    pub vocab: usize,
    /// The most frequent value and its count.
    pub mode: (String, usize),
}

/// A per-attribute summary.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSummary {
    /// Numeric attribute statistics.
    Numeric(NumericSummary),
    /// Categorical attribute statistics.
    Categorical(CategoricalSummary),
}

/// Summarises every attribute of `data`.
///
/// # Panics
/// Panics on an empty dataset (no rows to summarise).
pub fn summarize(data: &Dataset) -> Vec<AttrSummary> {
    assert!(data.n_rows() > 0, "cannot summarise an empty dataset");
    (0..data.n_attrs())
        .map(|a| {
            let name = data.schema().attr(a).name.clone();
            match data.column(a) {
                Column::Num(values) => {
                    let n = values.len() as f64;
                    let mean = crate::weights::ordered_sum(values.iter().copied()) / n;
                    let var =
                        crate::weights::ordered_sum(values.iter().map(|v| (v - mean) * (v - mean)))
                            / n;
                    let sorted = data.sort_index(a);
                    let mut distinct = 0;
                    let mut last = f64::NAN;
                    for &r in sorted {
                        let v = values[r as usize];
                        if v != last {
                            distinct += 1;
                            last = v;
                        }
                    }
                    AttrSummary::Numeric(NumericSummary {
                        name,
                        min: values.iter().copied().fold(f64::INFINITY, f64::min),
                        max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                        mean,
                        std_dev: var.sqrt(),
                        distinct,
                    })
                }
                Column::Cat(codes) => {
                    let vocab = data.schema().attr(a).dict.len();
                    let mut counts = vec![0usize; vocab];
                    for &c in codes {
                        counts[c as usize] += 1;
                    }
                    let (mode_code, &mode_count) =
                        match counts.iter().enumerate().max_by_key(|(_, &c)| c) {
                            Some(m) => m,
                            None => unreachable!("non-empty dataset implies non-empty vocabulary"),
                        };
                    AttrSummary::Categorical(CategoricalSummary {
                        name,
                        vocab,
                        mode: (
                            data.schema()
                                .attr(a)
                                .dict
                                .name(crate::index::to_u32(mode_code, "dictionary code"))
                                .to_string(),
                            mode_count,
                        ),
                    })
                }
            }
        })
        .collect()
}

/// Renders the class distribution and attribute summaries as a plain-text
/// report.
pub fn describe(data: &Dataset) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} records, {} attributes, {} classes",
        data.n_rows(),
        data.n_attrs(),
        data.n_classes()
    );
    let counts = data.class_counts();
    for (code, count) in counts.iter().enumerate() {
        let _ = writeln!(
            out,
            "  class {:<12} {:>8} ({:.3}%)",
            data.class_name(crate::index::to_u32(code, "class code")),
            count,
            100.0 * *count as f64 / data.n_rows() as f64
        );
    }
    for s in summarize(data) {
        match s {
            AttrSummary::Numeric(n) => {
                let _ = writeln!(
                    out,
                    "  num {:<14} min {:>10.3} max {:>10.3} mean {:>10.3} sd {:>9.3} distinct {}",
                    n.name, n.min, n.max, n.mean, n.std_dev, n.distinct
                );
            }
            AttrSummary::Categorical(c) => {
                let _ = writeln!(
                    out,
                    "  cat {:<14} vocab {:>5} mode {} ({})",
                    c.name, c.vocab, c.mode.0, c.mode.1
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatasetBuilder, Value};
    use crate::schema::AttrType;

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for (x, k, c) in [
            (1.0, "a", "p"),
            (2.0, "b", "q"),
            (3.0, "a", "q"),
            (2.0, "a", "q"),
        ] {
            b.push_row(&[Value::num(x), Value::cat(k)], c, 1.0).unwrap();
        }
        b.finish()
    }

    #[test]
    fn numeric_summary_is_correct() {
        let d = data();
        let s = summarize(&d);
        let AttrSummary::Numeric(n) = &s[0] else {
            panic!("expected numeric")
        };
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 3.0);
        assert_eq!(n.mean, 2.0);
        assert_eq!(n.distinct, 3);
        assert!((n.std_dev - (0.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn categorical_summary_is_correct() {
        let d = data();
        let s = summarize(&d);
        let AttrSummary::Categorical(c) = &s[1] else {
            panic!("expected categorical")
        };
        assert_eq!(c.vocab, 2);
        assert_eq!(c.mode, ("a".to_string(), 3));
    }

    #[test]
    fn describe_renders_classes_and_attrs() {
        let d = data();
        let text = describe(&d);
        assert!(text.contains("4 records"));
        assert!(text.contains("class p"));
        assert!(text.contains("num x"));
        assert!(text.contains("cat k"));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        let d = b.finish();
        summarize(&d);
    }
}
