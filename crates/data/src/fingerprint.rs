//! FNV-1a content fingerprinting.
//!
//! One hashing primitive shared by everything in the workspace that needs
//! a stable content digest: the experiment checkpoint store keys cells by
//! it, and the model-artifact layer uses it both for the on-disk integrity
//! checksum and for the schema fingerprint that serving-time
//! reconciliation reports. FNV-1a is not cryptographic — it detects
//! accidental corruption (any single-byte change alters the digest, since
//! every per-byte step is a bijection of the running state), not
//! adversarial tampering.

/// Streaming FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    hash: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a { hash: FNV_OFFSET }
    }
}

impl Fnv1a {
    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `bytes` into the digest.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.hash ^= u64::from(byte);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a string's UTF-8 bytes followed by a unit separator, so
    /// adjacent fields never alias (`("a", "bc")` vs `("ab", "c")`).
    pub fn write_field(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write(&[0x1f]);
    }

    /// The current digest.
    pub fn finish(&self) -> u64 {
        self.hash
    }
}

/// FNV-1a 64-bit digest of a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a_64(b"foobar"));
    }

    #[test]
    fn field_separator_prevents_aliasing() {
        let mut ab_c = Fnv1a::new();
        ab_c.write_field("ab");
        ab_c.write_field("c");
        let mut a_bc = Fnv1a::new();
        a_bc.write_field("a");
        a_bc.write_field("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn single_byte_flips_always_change_the_digest() {
        let base = b"pnrule-artifact v1\n{\"model\":42}".to_vec();
        let original = fnv1a_64(&base);
        for i in 0..base.len() {
            for mask in [0x01u8, 0x80, 0xff] {
                let mut corrupt = base.clone();
                corrupt[i] ^= mask;
                assert_ne!(
                    fnv1a_64(&corrupt),
                    original,
                    "flip at byte {i} mask {mask:#x} went undetected"
                );
            }
        }
    }
}
