//! Checked narrowing for row ids and dictionary codes.
//!
//! Rows and interned codes are stored as `u32` throughout the workspace to
//! halve index-memory traffic, but the conversion sites receive `usize`
//! counts. A bare `as u32` silently truncates past 2³² and the resulting
//! row aliasing corrupts every weighted statistic downstream, so the
//! `lossy-cast` lint (`cargo xtask lint`) forbids the bare cast in index
//! arithmetic; these helpers make the narrowing explicit and checked.

/// Narrows `n` to `u32`, panicking with a diagnosable message on overflow.
/// `what` names the quantity (e.g. `"row index"`) for the panic message.
#[inline]
pub fn to_u32(n: usize, what: &str) -> u32 {
    match u32::try_from(n) {
        Ok(v) => v,
        Err(_) => panic!("{what} {n} exceeds u32::MAX"),
    }
}

/// Checked narrowing of a row index.
#[inline]
pub fn row_id(row: usize) -> u32 {
    to_u32(row, "row index")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrows_in_range_values() {
        assert_eq!(row_id(0), 0);
        assert_eq!(row_id(u32::MAX as usize), u32::MAX);
        assert_eq!(to_u32(42, "code"), 42);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    #[should_panic(expected = "row index 4294967296 exceeds u32::MAX")]
    fn overflow_panics_with_context() {
        let _ = row_id(u32::MAX as usize + 1);
    }
}
