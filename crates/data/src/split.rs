//! Train/test splitting and class subsampling.

use crate::dataset::Dataset;
use crate::index::{row_id, to_u32};
use rand::seq::SliceRandom;
use rand::Rng;

/// Randomly splits `data` into `(train, test)` with `train_frac` of rows in
/// the training part.
///
/// The split is a uniform shuffle; use [`stratified_split`] when class
/// proportions must be preserved exactly (important for rare classes, where a
/// uniform split can starve one side of positives).
pub fn train_test_split<R: Rng>(
    data: &Dataset,
    train_frac: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&train_frac),
        "train_frac must be in [0,1]"
    );
    let mut rows: Vec<u32> = (0..to_u32(data.n_rows(), "row count")).collect();
    rows.shuffle(rng);
    let n_train = ((data.n_rows() as f64) * train_frac).round() as usize;
    let (train_rows, test_rows) = rows.split_at(n_train.min(rows.len()));
    let mut train_rows = train_rows.to_vec();
    let mut test_rows = test_rows.to_vec();
    // Restore row order inside each part so splits are stable views of the
    // original ordering.
    train_rows.sort_unstable();
    test_rows.sort_unstable();
    (data.select_rows(&train_rows), data.select_rows(&test_rows))
}

/// Splits `data` into `(train, test)` preserving per-class proportions.
///
/// Each class's rows are shuffled independently and `train_frac` of them go
/// to the training side (rounded per class).
pub fn stratified_split<R: Rng>(
    data: &Dataset,
    train_frac: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    assert!(
        (0.0..=1.0).contains(&train_frac),
        "train_frac must be in [0,1]"
    );
    let mut per_class: Vec<Vec<u32>> = vec![Vec::new(); data.n_classes()];
    for row in 0..data.n_rows() {
        per_class[data.label(row) as usize].push(row_id(row));
    }
    let mut train_rows = Vec::new();
    let mut test_rows = Vec::new();
    for rows in &mut per_class {
        rows.shuffle(rng);
        let n_train = ((rows.len() as f64) * train_frac).round() as usize;
        train_rows.extend_from_slice(&rows[..n_train.min(rows.len())]);
        test_rows.extend_from_slice(&rows[n_train.min(rows.len())..]);
    }
    train_rows.sort_unstable();
    test_rows.sort_unstable();
    (data.select_rows(&train_rows), data.select_rows(&test_rows))
}

/// Keeps all rows of classes other than `class`, and a random `frac` of the
/// rows of `class`.
///
/// This implements the paper's `ntc-frac` transform (Table 5): the
/// *non-target* class is subsampled while every target example is retained,
/// raising the effective target-class proportion.
pub fn subsample_class<R: Rng>(data: &Dataset, class: u32, frac: f64, rng: &mut R) -> Dataset {
    assert!((0.0..=1.0).contains(&frac), "frac must be in [0,1]");
    let mut class_rows = Vec::new();
    let mut other_rows = Vec::new();
    for row in 0..data.n_rows() {
        if data.label(row) == class {
            class_rows.push(row_id(row));
        } else {
            other_rows.push(row_id(row));
        }
    }
    class_rows.shuffle(rng);
    let n_keep = ((class_rows.len() as f64) * frac).round() as usize;
    class_rows.truncate(n_keep.min(class_rows.len()));
    let mut rows = other_rows;
    rows.extend_from_slice(&class_rows);
    rows.sort_unstable();
    data.select_rows(&rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatasetBuilder, Value};
    use crate::schema::AttrType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labelled(n_pos: usize, n_neg: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n_pos {
            b.push_row(&[Value::num(i as f64)], "pos", 1.0).unwrap();
        }
        for i in 0..n_neg {
            b.push_row(&[Value::num(i as f64 + 1000.0)], "neg", 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn train_test_split_partitions_rows() {
        let d = labelled(10, 90);
        let mut rng = StdRng::seed_from_u64(7);
        let (tr, te) = train_test_split(&d, 0.7, &mut rng);
        assert_eq!(tr.n_rows(), 70);
        assert_eq!(te.n_rows(), 30);
        assert_eq!(tr.n_rows() + te.n_rows(), d.n_rows());
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let d = labelled(20, 80);
        let mut rng = StdRng::seed_from_u64(11);
        let (tr, te) = stratified_split(&d, 0.5, &mut rng);
        let pos = d.class_code("pos").unwrap() as usize;
        assert_eq!(tr.class_counts()[pos], 10);
        assert_eq!(te.class_counts()[pos], 10);
        assert_eq!(tr.n_rows(), 50);
    }

    #[test]
    fn stratified_split_is_seed_deterministic() {
        let d = labelled(6, 14);
        let (a1, _) = stratified_split(&d, 0.5, &mut StdRng::seed_from_u64(3));
        let (a2, _) = stratified_split(&d, 0.5, &mut StdRng::seed_from_u64(3));
        assert_eq!(a1.labels(), a2.labels());
    }

    #[test]
    fn subsample_class_keeps_other_classes_whole() {
        let d = labelled(10, 100);
        let neg = d.class_code("neg").unwrap();
        let pos = d.class_code("pos").unwrap() as usize;
        let mut rng = StdRng::seed_from_u64(5);
        let s = subsample_class(&d, neg, 0.1, &mut rng);
        assert_eq!(s.class_counts()[pos], 10);
        assert_eq!(s.class_counts()[neg as usize], 10);
    }

    #[test]
    fn subsample_class_frac_one_is_identity_sized() {
        let d = labelled(5, 15);
        let neg = d.class_code("neg").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let s = subsample_class(&d, neg, 1.0, &mut rng);
        assert_eq!(s.n_rows(), d.n_rows());
    }

    #[test]
    #[should_panic(expected = "train_frac")]
    fn split_rejects_bad_fraction() {
        let d = labelled(1, 1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = train_test_split(&d, 1.5, &mut rng);
    }
}
