//! String interning for categorical attribute values and class labels.

use crate::index::to_u32;
use serde::{Deserialize, Serialize};
// lint:allow(nondet-iter) — lookup table only; iteration always walks `values` in code order
use std::collections::HashMap;

/// An append-only string dictionary mapping strings to dense `u32` codes.
///
/// Every categorical attribute and the class column own one dictionary.
/// Codes are assigned in first-seen order, which makes dataset construction
/// deterministic for a fixed row order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dictionary {
    values: Vec<String>,
    #[serde(skip)]
    // lint:allow(nondet-iter) — lookup table only; iteration always walks `values` in code order
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its code (existing or newly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = to_u32(self.values.len(), "dictionary code");
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Looks up the code of `s` without interning.
    pub fn code(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Returns the string for `code`.
    ///
    /// # Panics
    /// Panics if `code` was never assigned.
    pub fn name(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(code, value)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (to_u32(i, "dictionary code"), v.as_str()))
    }

    /// Rebuilds the lookup index from the value list. Needed after
    /// deserialisation, where the index is skipped.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .values
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), to_u32(i, "dictionary code")))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("tcp"), 0);
        assert_eq!(d.intern("udp"), 1);
        assert_eq!(d.intern("tcp"), 0);
        assert_eq!(d.intern("icmp"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn code_does_not_intern() {
        let mut d = Dictionary::new();
        d.intern("a");
        assert_eq!(d.code("a"), Some(0));
        assert_eq!(d.code("b"), None);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn name_round_trips() {
        let mut d = Dictionary::new();
        for s in ["x", "y", "z"] {
            let c = d.intern(s);
            assert_eq!(d.name(c), s);
        }
    }

    #[test]
    fn iter_yields_code_order() {
        let mut d = Dictionary::new();
        d.intern("b");
        d.intern("a");
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "b"), (1, "a")]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut d = Dictionary::new();
        d.intern("p");
        d.intern("q");
        let json = serde_json::to_string(&d).unwrap();
        let mut back: Dictionary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.code("q"), None); // index was skipped
        back.rebuild_index();
        assert_eq!(back.code("q"), Some(1));
        assert_eq!(back.name(0), "p");
    }

    #[test]
    fn empty_dictionary_reports_empty() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
