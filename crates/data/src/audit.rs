//! Runtime invariant checkers, compiled in by the `audit` cargo feature.
//!
//! The learners' correctness rests on bookkeeping invariants that no static
//! check can see: weight mass is conserved when a view splits, a view's
//! sorted projection is a permutation of exactly the view's rows, MDL
//! truncation never raises description length beyond its slack, and score
//! cells are probabilities. Each checker panics with a diagnosable
//! `audit: <context>: …` message naming the violated invariant and the
//! offending numbers. Production call sites are gated on
//! `#[cfg(feature = "audit")]` so release binaries pay nothing; CI runs the
//! full suite once with `--features audit`.

use crate::dataset::{Column, Dataset};
use crate::weights::approx;

/// Asserts the dataset-wide finite-data invariant: every numeric cell
/// holds a finite `f64`. Rule evaluation reads numeric cells unguarded
/// (`Condition::matches`, the compiled dispatch tables), so a NaN would
/// not crash — it would silently fail every numeric condition and skew
/// scores. `DatasetBuilder::push_row` rejects NaN/±∞ up front, but a
/// dataset rebuilt from serialized form bypasses the builder: JSON has no
/// literal for non-finite numbers, yet a textual `1e999` parses to `inf`,
/// so `Dataset::rebuild_after_deserialize` re-checks under `audit`.
///
/// # Panics
/// Panics naming the first non-finite numeric cell.
pub fn check_finite_columns(context: &str, data: &Dataset) {
    for attr in 0..data.n_attrs() {
        if let Column::Num(values) = data.column(attr) {
            for (row, &x) in values.iter().enumerate() {
                assert!(
                    x.is_finite(),
                    "audit: {context}: numeric cell (attr {attr}, row {row}) \
                     is non-finite ({x})",
                );
            }
        }
    }
}

/// Asserts that one numeric cell is finite — the per-row companion of
/// [`check_finite_columns`], cheap enough to run on every
/// `DatasetBuilder::push_row` as defense in depth behind the builder's
/// own `Result`-based validation.
///
/// # Panics
/// Panics when `x` is NaN or infinite.
pub fn check_finite_value(context: &str, attr: usize, x: f64) {
    assert!(
        x.is_finite(),
        "audit: {context}: numeric value for attr {attr} is non-finite ({x})",
    );
}

/// Asserts weight conservation across a view split: the parent's positive
/// and total masses must equal kept + removed up to cancellation tolerance.
/// Each argument is a `(pos_weight, total_weight)` pair.
///
/// # Panics
/// Panics when either mass is not conserved.
pub fn check_split_conservation(
    context: &str,
    parent: (f64, f64),
    kept: (f64, f64),
    removed: (f64, f64),
) {
    let (name_idx, masses) = (
        ["pos", "total"],
        [(parent.0, kept.0, removed.0), (parent.1, kept.1, removed.1)],
    );
    for (name, (p, k, r)) in name_idx.iter().zip(masses) {
        assert!(
            approx::approx_eq(p, k + r),
            "audit: {context}: {name} weight not conserved across split: \
             parent {p} != kept {k} + removed {r} (diff {})",
            p - (k + r),
        );
    }
}

/// Asserts that sorted row slice `child` is a subset of sorted row slice
/// `parent` (both ascending, as `RowSet` stores them).
///
/// # Panics
/// Panics naming the first row of `child` missing from `parent`.
pub fn check_subset(context: &str, child: &[u32], parent: &[u32]) {
    let mut pi = parent.iter().copied();
    'child: for &c in child {
        for p in pi.by_ref() {
            match p.cmp(&c) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'child,
                std::cmp::Ordering::Greater => break,
            }
        }
        panic!("audit: {context}: row {c} of the derived view is not in the parent view");
    }
}

/// Asserts view-projection consistency: `proj` must be a permutation of
/// `rows` (the view's ascending row ids) ordered ascending by the value of
/// numeric attribute `attr` with ties in row order.
///
/// # Panics
/// Panics on a length mismatch, an out-of-order pair, or a row-set mismatch.
pub fn check_sorted_projection(
    context: &str,
    data: &Dataset,
    attr: usize,
    rows: &[u32],
    proj: &[u32],
) {
    assert!(
        proj.len() == rows.len(),
        "audit: {context}: projection of attr {attr} has {} rows but the view has {}",
        proj.len(),
        rows.len(),
    );
    for pair in proj.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let (va, vb) = (data.num(attr, a as usize), data.num(attr, b as usize));
        assert!(
            va < vb || (va == vb && a < b),
            "audit: {context}: projection of attr {attr} out of order: \
             row {a} (value {va}) precedes row {b} (value {vb})",
        );
    }
    let mut sorted = proj.to_vec();
    sorted.sort_unstable();
    assert!(
        sorted == rows,
        "audit: {context}: projection of attr {attr} is not a permutation of the view's rows",
    );
}

/// Asserts that `p` is a probability.
///
/// # Panics
/// Panics when `p` is NaN or outside `[0, 1]`.
pub fn check_probability(context: &str, p: f64) {
    assert!(
        (0.0..=1.0).contains(&p),
        "audit: {context}: {p} is not a probability in [0, 1]",
    );
}

/// Asserts DL non-increase across MDL truncation: the kept prefix's
/// description length must not exceed the untruncated model's by more than
/// the configured slack (plus cancellation tolerance).
///
/// # Panics
/// Panics when truncation *raised* description length beyond the slack.
pub fn check_dl_truncation(context: &str, dl_full: f64, dl_kept: f64, slack_bits: f64) {
    assert!(
        dl_kept <= dl_full + slack_bits + approx::WEIGHT_EPS,
        "audit: {context}: truncation raised description length: \
         kept {dl_kept} bits > full {dl_full} bits + slack {slack_bits}",
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{DatasetBuilder, Value};
    use crate::schema::AttrType;

    fn data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..6 {
            b.push_row(&[Value::num((5 - i) as f64)], "c", 1.0).unwrap();
        }
        b.finish()
    }

    #[test]
    fn finite_columns_pass() {
        check_finite_columns("t", &data());
    }

    #[test]
    #[should_panic(expected = "numeric cell (attr 0, row 1) is non-finite (inf)")]
    fn non_finite_cell_fires() {
        // Forge the builder bypass: deserialization is the one path that
        // can plant a non-finite value in a dense column.
        let json = serde_json::to_string(&data()).unwrap();
        let json = json.replacen("4.0", "1e999", 1);
        let d: Dataset = serde_json::from_str(&json).unwrap();
        check_finite_columns("t", &d);
    }

    #[test]
    fn conserved_split_passes() {
        check_split_conservation("t", (3.0, 10.0), (1.0, 6.0), (2.0, 4.0));
        // cancellation residue within tolerance is fine
        check_split_conservation("t", (3.0, 10.0), (1.0, 6.0 + 1e-12), (2.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "total weight not conserved")]
    fn leaked_total_mass_fires() {
        check_split_conservation("t", (3.0, 10.0), (1.0, 6.0), (2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "pos weight not conserved")]
    fn leaked_pos_mass_fires() {
        check_split_conservation("t", (3.0, 10.0), (0.5, 6.0), (2.0, 4.0));
    }

    #[test]
    fn subset_accepts_subsets() {
        check_subset("t", &[], &[1, 2, 3]);
        check_subset("t", &[2, 3], &[1, 2, 3]);
        check_subset("t", &[1, 2, 3], &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "row 4 of the derived view")]
    fn foreign_row_fires() {
        check_subset("t", &[2, 4], &[1, 2, 3]);
    }

    #[test]
    fn good_projection_passes() {
        let d = data();
        // values descend with row id, so the sorted projection reverses
        check_sorted_projection("t", &d, 0, &[0, 1, 2, 3, 4, 5], &[5, 4, 3, 2, 1, 0]);
        check_sorted_projection("t", &d, 0, &[1, 3], &[3, 1]);
    }

    #[test]
    #[should_panic(expected = "has 1 rows but the view has 2")]
    fn dropped_row_fires() {
        let d = data();
        check_sorted_projection("t", &d, 0, &[1, 3], &[3]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn misordered_projection_fires() {
        let d = data();
        check_sorted_projection("t", &d, 0, &[1, 3], &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn swapped_row_fires() {
        let d = data();
        // right length and value-sorted, but row 2 replaces row 3
        check_sorted_projection("t", &d, 0, &[1, 3], &[2, 1]);
    }

    #[test]
    fn probability_bounds() {
        check_probability("t", 0.0);
        check_probability("t", 1.0);
        check_probability("t", 0.5);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn excess_probability_fires() {
        check_probability("t", 1.0 + 1e-6);
    }

    #[test]
    #[should_panic(expected = "not a probability")]
    fn nan_probability_fires() {
        check_probability("t", f64::NAN);
    }

    #[test]
    fn truncation_within_slack_passes() {
        check_dl_truncation("t", 100.0, 90.0, 0.0);
        check_dl_truncation("t", 100.0, 100.5, 1.0);
    }

    #[test]
    #[should_panic(expected = "truncation raised description length")]
    fn truncation_above_slack_fires() {
        check_dl_truncation("t", 100.0, 102.0, 1.0);
    }
}
