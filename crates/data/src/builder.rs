//! Incremental construction of [`Dataset`]s.

use crate::dataset::{Column, Dataset};
use crate::error::DataError;
use crate::schema::{AttrType, Attribute, Schema};

/// A value being appended to a dataset under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Value<'a> {
    /// A numeric value; must be finite.
    Num(f64),
    /// A categorical value by name; interned on insertion.
    Cat(&'a str),
}

impl<'a> Value<'a> {
    /// Shorthand for `Value::Num(v)`.
    pub fn num(v: f64) -> Self {
        Value::Num(v)
    }

    /// Shorthand for `Value::Cat(s)`.
    pub fn cat(s: &'a str) -> Self {
        Value::Cat(s)
    }
}

/// Builds a [`Dataset`] row by row.
///
/// Attributes must all be declared before the first row is pushed; the
/// builder then enforces arity and type agreement for every row.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    schema: Schema,
    columns: Vec<Column>,
    labels: Vec<u32>,
    weights: Vec<f64>,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an attribute column. Returns its index.
    ///
    /// # Panics
    /// Panics if rows have already been pushed.
    pub fn add_attribute(&mut self, name: impl Into<String>, ty: AttrType) -> usize {
        assert!(
            self.labels.is_empty(),
            "attributes must be declared before rows"
        );
        self.schema.attributes.push(Attribute::new(name, ty));
        self.columns.push(match ty {
            AttrType::Numeric => Column::Num(Vec::new()),
            AttrType::Categorical => Column::Cat(Vec::new()),
        });
        self.columns.len() - 1
    }

    /// Pre-registers a class label so that its code is fixed regardless of
    /// the order classes first appear in rows. Returns the code.
    pub fn add_class(&mut self, name: &str) -> u32 {
        self.schema.classes.intern(name)
    }

    /// Pre-registers a categorical value so that its code is fixed
    /// regardless of the order values first appear in rows. Generators use
    /// this to give independently built train and test sets **identical
    /// dictionaries** — learned conditions store codes, so the schemas must
    /// agree. Returns the code.
    ///
    /// # Panics
    /// Panics if `attr` is not a categorical attribute.
    pub fn add_cat_value(&mut self, attr: usize, value: &str) -> u32 {
        assert!(
            self.schema.attributes[attr].ty == AttrType::Categorical,
            "attribute {attr} is not categorical"
        );
        self.schema.attributes[attr].dict.intern(value)
    }

    /// Reserves capacity for `n` additional rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for c in &mut self.columns {
            match c {
                Column::Num(v) => v.reserve(n),
                Column::Cat(v) => v.reserve(n),
            }
        }
        self.labels.reserve(n);
        self.weights.reserve(n);
    }

    /// Appends one record.
    pub fn push_row(
        &mut self,
        values: &[Value<'_>],
        class: &str,
        weight: f64,
    ) -> Result<(), DataError> {
        if values.len() != self.columns.len() {
            return Err(DataError::ArityMismatch {
                expected: self.columns.len(),
                got: values.len(),
            });
        }
        if !(weight.is_finite() && weight >= 0.0) {
            return Err(DataError::InvalidWeight { weight });
        }
        // Validate the whole row before mutating any column so a failed push
        // leaves the builder unchanged.
        for (attr, value) in values.iter().enumerate() {
            match (&self.columns[attr], value) {
                (Column::Num(_), Value::Num(x)) => {
                    if !x.is_finite() {
                        return Err(DataError::NonFiniteValue { attr });
                    }
                }
                (Column::Cat(_), Value::Cat(_)) => {}
                (Column::Num(_), Value::Cat(_)) => {
                    return Err(DataError::TypeMismatch {
                        attr,
                        expected: "numeric",
                    })
                }
                (Column::Cat(_), Value::Num(_)) => {
                    return Err(DataError::TypeMismatch {
                        attr,
                        expected: "categorical",
                    })
                }
            }
        }
        for (attr, value) in values.iter().enumerate() {
            #[cfg(feature = "audit")]
            if let Value::Num(x) = value {
                crate::audit::check_finite_value("DatasetBuilder::push_row", attr, *x);
            }
            match (&mut self.columns[attr], value) {
                (Column::Num(col), Value::Num(x)) => col.push(*x),
                (Column::Cat(col), Value::Cat(s)) => {
                    let code = self.schema.attributes[attr].dict.intern(s);
                    col.push(code);
                }
                _ => unreachable!("validated above"),
            }
        }
        self.labels.push(self.schema.classes.intern(class));
        self.weights.push(weight);
        Ok(())
    }

    /// Number of rows pushed so far.
    pub fn n_rows(&self) -> usize {
        self.labels.len()
    }

    /// Finalises the builder into an immutable [`Dataset`].
    pub fn finish(self) -> Dataset {
        Dataset::from_parts(self.schema, self.columns, self.labels, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_mixed_dataset() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.push_row(&[Value::num(1.0), Value::cat("a")], "c0", 1.0)
            .unwrap();
        b.push_row(&[Value::num(2.0), Value::cat("b")], "c1", 1.0)
            .unwrap();
        assert_eq!(b.n_rows(), 2);
        let d = b.finish();
        assert_eq!(d.cat_name(1, 1), "b");
        assert_eq!(d.n_classes(), 2);
    }

    #[test]
    fn arity_mismatch_is_rejected_and_builder_unchanged() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("y", AttrType::Numeric);
        let err = b.push_row(&[Value::num(1.0)], "c", 1.0).unwrap_err();
        assert!(matches!(
            err,
            DataError::ArityMismatch {
                expected: 2,
                got: 1
            }
        ));
        assert_eq!(b.n_rows(), 0);
    }

    #[test]
    fn type_mismatch_is_rejected_without_partial_write() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        // first value valid, second invalid: nothing must be written
        let err = b
            .push_row(&[Value::num(1.0), Value::num(2.0)], "c", 1.0)
            .unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { attr: 1, .. }));
        assert_eq!(b.n_rows(), 0);
        let d = b.finish();
        assert!(d.column(0).is_empty());
    }

    #[test]
    fn non_finite_numeric_is_rejected() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = b.push_row(&[Value::num(bad)], "c", 1.0).unwrap_err();
            assert!(matches!(err, DataError::NonFiniteValue { attr: 0 }));
        }
    }

    #[test]
    fn invalid_weight_is_rejected_without_partial_write() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.5] {
            let err = b.push_row(&[Value::num(1.0)], "c", bad).unwrap_err();
            assert!(matches!(err, DataError::InvalidWeight { .. }), "{bad}");
        }
        assert_eq!(b.n_rows(), 0);
        let d = b.finish();
        assert!(d.column(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "before rows")]
    fn adding_attribute_after_rows_panics() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.push_row(&[Value::num(1.0)], "c", 1.0).unwrap();
        b.add_attribute("y", AttrType::Numeric);
    }

    #[test]
    fn add_cat_value_fixes_codes_across_builders() {
        let build = |first: &str, second: &str| {
            let mut b = DatasetBuilder::new();
            b.add_attribute("k", AttrType::Categorical);
            b.add_cat_value(0, "a");
            b.add_cat_value(0, "b");
            b.push_row(&[Value::cat(first)], "c", 1.0).unwrap();
            b.push_row(&[Value::cat(second)], "c", 1.0).unwrap();
            b.finish()
        };
        let d1 = build("a", "b");
        let d2 = build("b", "a"); // reversed appearance order
        assert_eq!(
            d1.schema().attr(0).dict.code("b"),
            d2.schema().attr(0).dict.code("b")
        );
    }

    #[test]
    #[should_panic(expected = "not categorical")]
    fn add_cat_value_rejects_numeric_attr() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_cat_value(0, "oops");
    }

    #[test]
    fn add_class_fixes_label_codes() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        assert_eq!(b.add_class("target"), 0);
        assert_eq!(b.add_class("other"), 1);
        b.push_row(&[Value::num(1.0)], "other", 1.0).unwrap();
        let d = b.finish();
        assert_eq!(d.label(0), 1);
    }
}
