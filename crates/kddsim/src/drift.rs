//! Scheduled attack-mix drift for simulated streams.
//!
//! [`MixStream`](crate::MixStream) emits a *fixed* mix, apportioned up
//! front — right for training corpora, wrong for live-traffic
//! simulation, where the interesting scenarios are exactly the ones
//! whose class mix *moves*: a step shift when a new attack campaign
//! starts at row `k`, a linear ramp as it builds, or a recurring
//! day/night-style alternation. [`DriftSchedule`] describes those
//! shapes as a pure function of the row index, and [`DriftStream`]
//! samples one subclass per row from `mix_at(row)` with a seeded RNG —
//! so an entire drifting scenario (loadgen traffic, sentinel refit
//! windows, experiment harness) replays bit-identically from one
//! `(seed, schedule)` pair.
//!
//! Unlike `MixStream` (which emits subclass-by-subclass blocks), a
//! `DriftStream` interleaves rows in arrival order: the mix of a window
//! of rows converges to the scheduled mix but each row is an
//! independent draw, the way live traffic actually looks.

use crate::schema::build_schema_builder;
use crate::subclass::Subclass;
use pnr_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A subclass mix: `(subclass, weight)` pairs; weights need not be
/// normalised but must be non-negative with a positive sum.
pub type Mix = Vec<(Subclass, f64)>;

/// How the subclass mix of a stream evolves over the row index. Every
/// variant is a pure function of `row` — no state, no clock.
#[derive(Debug, Clone)]
pub enum DriftSchedule {
    /// The mix never changes.
    Constant(Mix),
    /// `before` up to (exclusive) row `at`, `after` from then on.
    Step {
        /// First row drawn from `after`.
        at: usize,
        /// The pre-shift mix.
        before: Mix,
        /// The post-shift mix.
        after: Mix,
    },
    /// `before` until `start`, then a linear blend reaching `after` at
    /// row `end` (weights interpolate per subclass over the union).
    Ramp {
        /// Last fully-`before` row boundary.
        start: usize,
        /// First fully-`after` row.
        end: usize,
        /// The pre-ramp mix.
        before: Mix,
        /// The post-ramp mix.
        after: Mix,
    },
    /// Cycles through `phases`, holding each for `period` rows — a
    /// recurring attack-mix alternation.
    Recurring {
        /// Rows per phase; must be > 0.
        period: usize,
        /// The mixes to cycle through; must be non-empty.
        phases: Vec<Mix>,
    },
}

impl DriftSchedule {
    /// The union of both mixes, `before`'s order first, with each weight
    /// linearly interpolated by `t ∈ [0, 1]`.
    fn blend(before: &Mix, after: &Mix, t: f64) -> Mix {
        let weight_in =
            |mix: &Mix, s: Subclass| mix.iter().find(|(m, _)| *m == s).map_or(0.0, |&(_, w)| w);
        let mut out: Mix = Vec::with_capacity(before.len() + after.len());
        for &(s, wb) in before {
            out.push((s, wb + (weight_in(after, s) - wb) * t));
        }
        for &(s, wa) in after {
            if !before.iter().any(|(b, _)| *b == s) {
                out.push((s, wa * t));
            }
        }
        out
    }

    /// The mix in effect at `row`.
    pub fn mix_at(&self, row: usize) -> Mix {
        match self {
            DriftSchedule::Constant(mix) => mix.clone(),
            DriftSchedule::Step { at, before, after } => {
                if row < *at {
                    before.clone()
                } else {
                    after.clone()
                }
            }
            DriftSchedule::Ramp {
                start,
                end,
                before,
                after,
            } => {
                if row < *start || end <= start {
                    return if row < *start {
                        before.clone()
                    } else {
                        after.clone()
                    };
                }
                if row >= *end {
                    return after.clone();
                }
                let span = end - start;
                let into = row - start;
                // both fit f64 exactly for any realistic stream length
                let t = to_f64(into) / to_f64(span);
                Self::blend(before, after, t)
            }
            DriftSchedule::Recurring { period, phases } => {
                assert!(*period > 0, "recurring period must be positive");
                assert!(!phases.is_empty(), "recurring schedule needs phases");
                phases[(row / period) % phases.len()].clone()
            }
        }
    }

    /// The first row at which the schedule departs from its initial mix
    /// (`None` for a constant schedule) — the ground-truth drift onset
    /// the detection-lag metric is measured against.
    pub fn shift_row(&self) -> Option<usize> {
        match self {
            DriftSchedule::Constant(_) => None,
            DriftSchedule::Step { at, .. } => Some(*at),
            DriftSchedule::Ramp { start, .. } => Some(*start),
            DriftSchedule::Recurring { period, phases } => {
                if phases.len() > 1 {
                    Some(*period)
                } else {
                    None
                }
            }
        }
    }

    /// Parses the loadgen/sentinel CLI form:
    /// `step:AT` (train mix → test mix at row AT),
    /// `ramp:START:END` (train mix ramping to test mix),
    /// `recur:PERIOD` (train/test mixes alternating every PERIOD rows),
    /// `none` (constant train mix).
    pub fn parse(s: &str) -> Option<DriftSchedule> {
        let mut parts = s.split(':');
        let kind = parts.next()?;
        let schedule = match kind {
            "none" => DriftSchedule::Constant(crate::train_mix()),
            "step" => DriftSchedule::Step {
                at: parts.next()?.parse().ok()?,
                before: crate::train_mix(),
                after: crate::test_mix(),
            },
            "ramp" => {
                let start = parts.next()?.parse().ok()?;
                let end = parts.next()?.parse().ok()?;
                if end <= start {
                    return None;
                }
                DriftSchedule::Ramp {
                    start,
                    end,
                    before: crate::train_mix(),
                    after: crate::test_mix(),
                }
            }
            "recur" => DriftSchedule::Recurring {
                period: parts.next()?.parse().ok()?,
                phases: vec![crate::train_mix(), crate::test_mix()],
            },
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(schedule)
    }
}

fn to_f64(n: usize) -> f64 {
    u32::try_from(n).map(f64::from).unwrap_or(f64::MAX)
}

/// An endless row-interleaved stream whose per-row subclass is drawn
/// from `schedule.mix_at(row)`. Deterministic in `(seed, schedule)`;
/// chunk boundaries never change a drawn bit because every row costs
/// exactly one mix draw plus its subclass's emission draws.
#[derive(Debug)]
pub struct DriftStream {
    rng: StdRng,
    schedule: DriftSchedule,
    next_row: usize,
}

impl DriftStream {
    /// A stream positioned at row 0.
    pub fn new(seed: u64, schedule: DriftSchedule) -> Self {
        DriftStream {
            rng: StdRng::seed_from_u64(seed),
            schedule,
            next_row: 0,
        }
    }

    /// The row index the next emitted record will carry.
    pub fn position(&self) -> usize {
        self.next_row
    }

    /// The schedule driving this stream.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// Weighted draw of one subclass from `mix`. Panics if the mix is
    /// empty or sums to a non-positive weight (same contract as
    /// apportionment).
    fn draw(rng: &mut StdRng, mix: &Mix) -> Subclass {
        assert!(!mix.is_empty(), "mix must not be empty");
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "mix weights must sum to a positive value");
        let mut x = rng.gen::<f64>() * total;
        for &(s, w) in mix {
            x -= w;
            if x <= 0.0 {
                return s;
            }
        }
        // float round-off on the last subtraction; the draw belongs to
        // the final positive-weight entry
        mix.iter()
            .rev()
            .find(|(_, w)| *w > 0.0)
            .map(|&(s, _)| s)
            .unwrap_or(mix[mix.len() - 1].0)
    }

    /// Emits the next `rows` records as one dataset carrying the full
    /// fixed KDD schema.
    pub fn next_chunk(&mut self, rows: usize) -> Dataset {
        let mut b = build_schema_builder();
        b.reserve(rows);
        for _ in 0..rows {
            let mix = self.schedule.mix_at(self.next_row);
            let subclass = Self::draw(&mut self.rng, &mix);
            subclass.spec().emit(&mut b, &mut self.rng);
            self.next_row += 1;
        }
        b.finish()
    }

    /// Advances the stream `rows` records without keeping them. The RNG
    /// consumes exactly the draws the dropped rows would have, so a
    /// skipped stream stays bit-aligned with an unskipped one.
    pub fn skip(&mut self, rows: usize) {
        // emission draws depend on the drawn subclass, so rows must be
        // emitted (into a discarded builder) to keep the RNG aligned
        let _ = self.next_chunk(rows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{test_mix, train_mix};

    fn class_frac(d: &Dataset, name: &str) -> f64 {
        let code = d.class_code(name).unwrap() as usize;
        d.class_counts()[code] as f64 / d.n_rows() as f64
    }

    #[test]
    fn constant_stream_matches_the_mix() {
        let mut s = DriftStream::new(7, DriftSchedule::Constant(train_mix()));
        let d = s.next_chunk(50_000);
        assert!(
            (class_frac(&d, "r2l") - 0.0023).abs() < 0.002,
            "r2l drifted"
        );
        assert!(class_frac(&d, "dos") > 0.7);
    }

    #[test]
    fn streams_are_deterministic_in_the_seed() {
        let sched = || DriftSchedule::Step {
            at: 500,
            before: train_mix(),
            after: test_mix(),
        };
        let mut a = DriftStream::new(11, sched());
        let mut b = DriftStream::new(11, sched());
        let da = a.next_chunk(1_000);
        let db = b.next_chunk(1_000);
        assert_eq!(da.labels(), db.labels());
        for row in (0..da.n_rows()).step_by(97) {
            for attr in 0..da.n_attrs() {
                match da.column(attr) {
                    pnr_data::Column::Num(_) => {
                        assert_eq!(da.num(attr, row).to_bits(), db.num(attr, row).to_bits())
                    }
                    pnr_data::Column::Cat(_) => {
                        assert_eq!(da.cat(attr, row), db.cat(attr, row))
                    }
                }
            }
        }
        let mut c = DriftStream::new(12, sched());
        let dc = c.next_chunk(1_000);
        assert_ne!(da.labels(), dc.labels(), "different seeds must differ");
    }

    #[test]
    fn chunk_boundaries_do_not_change_the_stream() {
        let sched = || DriftSchedule::Step {
            at: 300,
            before: train_mix(),
            after: test_mix(),
        };
        let mut whole = DriftStream::new(3, sched());
        let all = whole.next_chunk(900);
        let mut pieces = DriftStream::new(3, sched());
        let mut labels = Vec::new();
        for rows in [1usize, 299, 100, 500] {
            labels.extend_from_slice(pieces.next_chunk(rows).labels());
        }
        assert_eq!(all.labels(), &labels[..]);
    }

    #[test]
    fn step_schedule_shifts_the_mix_at_the_step() {
        let mut s = DriftStream::new(
            21,
            DriftSchedule::Step {
                at: 20_000,
                before: train_mix(),
                after: test_mix(),
            },
        );
        let before = s.next_chunk(20_000);
        let after = s.next_chunk(20_000);
        assert!(
            class_frac(&after, "r2l") > 5.0 * class_frac(&before, "r2l").max(0.001),
            "post-step r2l share must jump: {} -> {}",
            class_frac(&before, "r2l"),
            class_frac(&after, "r2l")
        );
    }

    #[test]
    fn ramp_interpolates_monotonically() {
        let sched = DriftSchedule::Ramp {
            start: 1_000,
            end: 2_000,
            before: train_mix(),
            after: test_mix(),
        };
        let r2l_weight = |mix: &Mix| {
            let total: f64 = mix.iter().map(|(_, w)| w).sum();
            mix.iter()
                .filter(|(s, _)| {
                    matches!(
                        s,
                        Subclass::R2lGuessPasswd
                            | Subclass::R2lWarezClient
                            | Subclass::R2lFtpWrite
                            | Subclass::SnmpGuess
                    )
                })
                .map(|(_, w)| w / total)
                .sum::<f64>()
        };
        let w0 = r2l_weight(&sched.mix_at(0));
        let w_mid = r2l_weight(&sched.mix_at(1_500));
        let w_end = r2l_weight(&sched.mix_at(2_500));
        assert!(w0 < w_mid && w_mid < w_end, "{w0} {w_mid} {w_end}");
        assert_eq!(sched.shift_row(), Some(1_000));
    }

    #[test]
    fn recurring_schedule_cycles_phases() {
        let sched = DriftSchedule::Recurring {
            period: 100,
            phases: vec![train_mix(), test_mix()],
        };
        let w = |row: usize| {
            let mix = sched.mix_at(row);
            mix.iter().map(|(_, w)| w).sum::<f64>()
        };
        // phase identity, not just weight sums: rows 0..100 use phase 0
        assert_eq!(sched.mix_at(0).len(), train_mix().len());
        assert_eq!(sched.mix_at(150).len(), test_mix().len());
        assert_eq!(sched.mix_at(250).len(), train_mix().len());
        assert!(w(0) > 0.0);
        assert_eq!(sched.shift_row(), Some(100));
    }

    #[test]
    fn skip_keeps_the_stream_bit_aligned() {
        let sched = || DriftSchedule::Constant(train_mix());
        let mut skipped = DriftStream::new(5, sched());
        skipped.skip(777);
        let mut full = DriftStream::new(5, sched());
        let _ = full.next_chunk(777);
        assert_eq!(skipped.position(), full.position());
        assert_eq!(
            skipped.next_chunk(200).labels(),
            full.next_chunk(200).labels()
        );
    }

    #[test]
    fn parse_covers_the_cli_forms() {
        assert!(matches!(
            DriftSchedule::parse("step:500"),
            Some(DriftSchedule::Step { at: 500, .. })
        ));
        assert!(matches!(
            DriftSchedule::parse("ramp:100:300"),
            Some(DriftSchedule::Ramp {
                start: 100,
                end: 300,
                ..
            })
        ));
        assert!(matches!(
            DriftSchedule::parse("recur:250"),
            Some(DriftSchedule::Recurring { period: 250, .. })
        ));
        assert!(matches!(
            DriftSchedule::parse("none"),
            Some(DriftSchedule::Constant(_))
        ));
        for bad in ["step", "ramp:300:100", "ramp:1", "warp:9", "step:5:6", ""] {
            assert!(
                DriftSchedule::parse(bad).is_none(),
                "{bad:?} must not parse"
            );
        }
    }
}
