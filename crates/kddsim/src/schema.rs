//! The simulated connection-record schema (a representative subset of the
//! 41 KDD-CUP'99 features: the categoricals plus the numeric counters and
//! rates the attack signatures live in).

use pnr_data::{AttrType, DatasetBuilder};

/// Protocol vocabulary.
pub const PROTOCOLS: &[&str] = &["tcp", "udp", "icmp"];

/// Service vocabulary (a representative subset of KDD'99's 70 services).
pub const SERVICES: &[&str] = &[
    "http", "smtp", "ftp", "ftp_data", "telnet", "pop_3", "domain_u", "ecr_i", "eco_i", "private",
    "finger", "snmp", "other",
];

/// TCP status-flag vocabulary.
pub const FLAGS: &[&str] = &["SF", "S0", "REJ", "RSTR", "SH", "OTH"];

/// Class labels in fixed code order.
pub const CLASSES: &[&str] = &["normal", "dos", "probe", "r2l", "u2r"];

/// Attribute names in schema order: 3 categorical + 13 numeric.
pub const ATTR_NAMES: &[&str] = &[
    "protocol_type",
    "service",
    "flag",
    "duration",
    "src_bytes",
    "dst_bytes",
    "wrong_fragment",
    "hot",
    "num_failed_logins",
    "logged_in",
    "count",
    "srv_count",
    "serror_rate",
    "rerror_rate",
    "same_srv_rate",
    "diff_srv_rate",
];

/// Number of attributes.
pub const N_ATTRS: usize = 16;

/// Index of an attribute by name, or `None` for an unknown name. The
/// fallible form for serving-path callers that must not panic on
/// user-supplied names.
pub fn try_attr_index(name: &str) -> Option<usize> {
    ATTR_NAMES.iter().position(|&n| n == name)
}

/// Index of an attribute by name.
///
/// # Panics
/// Panics on an unknown name; generator-internal callers pass literal
/// names. User-facing paths use [`try_attr_index`].
pub fn attr_index(name: &str) -> usize {
    try_attr_index(name).unwrap_or_else(|| panic!("unknown attribute {name}"))
}

/// A builder with the full schema, every categorical vocabulary and every
/// class pre-registered (so all generated datasets share dictionary codes).
pub fn build_schema_builder() -> DatasetBuilder {
    let mut b = DatasetBuilder::new();
    for (i, name) in ATTR_NAMES.iter().enumerate() {
        let ty = if i < 3 {
            AttrType::Categorical
        } else {
            AttrType::Numeric
        };
        b.add_attribute(*name, ty);
    }
    for p in PROTOCOLS {
        b.add_cat_value(0, p);
    }
    for s in SERVICES {
        b.add_cat_value(1, s);
    }
    for f in FLAGS {
        b.add_cat_value(2, f);
    }
    for c in CLASSES {
        b.add_class(c);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_expected_shape() {
        let b = build_schema_builder();
        let d = b.finish();
        assert_eq!(d.n_attrs(), N_ATTRS);
        assert_eq!(d.n_classes(), 5);
        assert_eq!(d.schema().attr(0).dict.len(), PROTOCOLS.len());
        assert_eq!(d.schema().attr(1).dict.len(), SERVICES.len());
        assert_eq!(d.schema().attr(2).dict.len(), FLAGS.len());
    }

    #[test]
    fn attr_index_finds_all_names() {
        for (i, name) in ATTR_NAMES.iter().enumerate() {
            assert_eq!(attr_index(name), i);
            assert_eq!(try_attr_index(name), Some(i));
        }
    }

    #[test]
    fn try_attr_index_returns_none_for_unknown() {
        assert_eq!(try_attr_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "unknown attribute")]
    fn attr_index_rejects_unknown() {
        attr_index("nope");
    }

    #[test]
    fn names_and_count_agree() {
        assert_eq!(ATTR_NAMES.len(), N_ATTRS);
    }
}
