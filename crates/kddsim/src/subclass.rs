//! Attack and traffic subclass templates, and the train/test mixes.

use crate::schema::N_ATTRS;
use pnr_data::{DatasetBuilder, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// A numeric feature distribution.
#[derive(Debug, Clone, Copy)]
pub enum NumDist {
    /// Exactly this value.
    Const(f64),
    /// Uniform on `[lo, hi)`.
    U(f64, f64),
    /// Log-uniform on `[lo, hi)` (heavy-tailed byte counts).
    LogU(f64, f64),
}

impl NumDist {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            NumDist::Const(c) => c,
            NumDist::U(lo, hi) => lo + rng.gen::<f64>() * (hi - lo),
            NumDist::LogU(lo, hi) => {
                debug_assert!(lo > 0.0 && hi > lo);
                (lo.ln() + rng.gen::<f64>() * (hi.ln() - lo.ln())).exp()
            }
        }
    }
}

/// A weighted categorical choice.
type Choice = &'static [(&'static str, f64)];

fn pick(choice: Choice, rng: &mut StdRng) -> &'static str {
    let total: f64 = choice.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen::<f64>() * total;
    for (v, w) in choice {
        x -= w;
        if x <= 0.0 {
            return v;
        }
    }
    choice.last().expect("non-empty choice").0
}

/// The generative template of one traffic/attack subclass.
#[derive(Debug, Clone)]
pub struct SubclassSpec {
    /// Subclass name (diagnostic only; the dataset label is `class`).
    pub name: &'static str,
    /// Class label.
    pub class: &'static str,
    /// `protocol_type` distribution.
    pub protocol: Choice,
    /// `service` distribution.
    pub service: Choice,
    /// `flag` distribution.
    pub flag: Choice,
    /// The 13 numeric features in schema order (`duration`..`diff_srv_rate`).
    pub numeric: [NumDist; 13],
}

impl SubclassSpec {
    /// Appends one record drawn from the template.
    pub fn emit(&self, b: &mut DatasetBuilder, rng: &mut StdRng) {
        let mut row: Vec<Value<'_>> = Vec::with_capacity(N_ATTRS);
        row.push(Value::Cat(pick(self.protocol, rng)));
        row.push(Value::Cat(pick(self.service, rng)));
        row.push(Value::Cat(pick(self.flag, rng)));
        for d in &self.numeric {
            row.push(Value::Num(d.sample(rng)));
        }
        b.push_row(&row, self.class, 1.0).expect("schema fixed");
    }
}

/// The simulated subclasses. `NmapLike` and `SnmpGuess` appear **only in
/// the test mix** — the contest test set contained attack types absent from
/// training, which bounds what any learner can achieve (the paper notes
/// this "inherent limitation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subclass {
    /// Web browsing.
    NormalHttp,
    /// Mail traffic.
    NormalSmtp,
    /// Legitimate file transfer (overlaps the r2l warez signature).
    NormalFtp,
    /// DNS lookups.
    NormalDns,
    /// Busy/error-prone legitimate traffic: REJ/RSTR flags and moderate
    /// service diversity that overlaps the probe signatures — the false
    /// positives a precise probe model must learn to exclude.
    NormalBusy,
    /// ICMP echo flood.
    DosSmurf,
    /// SYN flood.
    DosNeptune,
    /// HTTP request flood.
    DosBack,
    /// Fragment attack.
    DosTeardrop,
    /// FTP-data flood — the paper's example of why an r2l "ftp" presence
    /// signature is inherently impure.
    DosFtpFlood,
    /// TCP port sweep.
    ProbePortsweep,
    /// ICMP host sweep.
    ProbeIpsweep,
    /// Vulnerability scanner.
    ProbeSatan,
    /// Stealth scan (test-only).
    NmapLike,
    /// Password guessing over telnet/pop3.
    R2lGuessPasswd,
    /// Warez download over ftp.
    R2lWarezClient,
    /// FTP write abuse.
    R2lFtpWrite,
    /// SNMP community-string guessing (test-only; dominates the contest's
    /// test-time r2l mass).
    SnmpGuess,
    /// Buffer overflow escalation.
    U2rBufferOverflow,
}

impl Subclass {
    /// The subclass's generative template.
    pub fn spec(&self) -> SubclassSpec {
        use NumDist::{Const, LogU, U};
        let zero = Const(0.0);
        match self {
            Subclass::NormalHttp => SubclassSpec {
                name: "normal_http",
                class: "normal",
                protocol: &[("tcp", 1.0)],
                service: &[("http", 1.0)],
                flag: &[("SF", 0.98), ("REJ", 0.02)],
                numeric: [
                    U(0.0, 5.0),          // duration
                    U(100.0, 2000.0),     // src_bytes
                    LogU(300.0, 20000.0), // dst_bytes
                    zero,                 // wrong_fragment
                    zero,                 // hot
                    zero,                 // num_failed_logins
                    Const(1.0),           // logged_in
                    U(1.0, 30.0),         // count
                    U(1.0, 30.0),         // srv_count
                    U(0.0, 0.05),         // serror_rate
                    U(0.0, 0.05),         // rerror_rate
                    U(0.8, 1.0),          // same_srv_rate
                    U(0.0, 0.1),          // diff_srv_rate
                ],
            },
            Subclass::NormalSmtp => SubclassSpec {
                name: "normal_smtp",
                class: "normal",
                protocol: &[("tcp", 1.0)],
                service: &[("smtp", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(0.0, 10.0),
                    U(200.0, 4000.0),
                    U(200.0, 1000.0),
                    zero,
                    zero,
                    zero,
                    Const(1.0),
                    U(1.0, 10.0),
                    U(1.0, 10.0),
                    U(0.0, 0.05),
                    U(0.0, 0.05),
                    U(0.7, 1.0),
                    U(0.0, 0.1),
                ],
            },
            Subclass::NormalFtp => SubclassSpec {
                name: "normal_ftp",
                class: "normal",
                protocol: &[("tcp", 1.0)],
                service: &[("ftp", 0.4), ("ftp_data", 0.6)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(0.0, 100.0),
                    LogU(100.0, 100_000.0),
                    LogU(100.0, 1_000_000.0),
                    zero,
                    U(0.0, 3.0), // hot indicators overlap the warez band
                    zero,
                    Const(1.0),
                    U(1.0, 8.0),
                    U(1.0, 8.0),
                    U(0.0, 0.05),
                    U(0.0, 0.05),
                    U(0.6, 1.0),
                    U(0.0, 0.2),
                ],
            },
            Subclass::NormalDns => SubclassSpec {
                name: "normal_dns",
                class: "normal",
                protocol: &[("udp", 1.0)],
                service: &[("domain_u", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    zero,
                    U(30.0, 120.0),
                    U(50.0, 500.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 50.0),
                    U(1.0, 50.0),
                    Const(0.0),
                    Const(0.0),
                    U(0.9, 1.0),
                    U(0.0, 0.05),
                ],
            },
            Subclass::NormalBusy => SubclassSpec {
                name: "normal_busy",
                class: "normal",
                protocol: &[("tcp", 1.0)],
                service: &[("private", 0.4), ("http", 0.4), ("other", 0.2)],
                flag: &[("REJ", 0.5), ("RSTR", 0.3), ("SF", 0.2)],
                numeric: [
                    U(0.0, 5.0),
                    U(0.0, 300.0),
                    U(0.0, 300.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 15.0),
                    U(1.0, 6.0),
                    U(0.0, 0.3),
                    U(0.2, 0.6),
                    U(0.1, 0.6),
                    U(0.2, 0.7),
                ],
            },
            Subclass::DosSmurf => SubclassSpec {
                name: "dos_smurf",
                class: "dos",
                protocol: &[("icmp", 1.0)],
                service: &[("ecr_i", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    zero,
                    Const(1032.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(400.0, 511.0),
                    U(400.0, 511.0),
                    Const(0.0),
                    Const(0.0),
                    Const(1.0),
                    Const(0.0),
                ],
            },
            Subclass::DosNeptune => SubclassSpec {
                name: "dos_neptune",
                class: "dos",
                protocol: &[("tcp", 1.0)],
                service: &[("private", 0.7), ("other", 0.3)],
                flag: &[("S0", 1.0)],
                numeric: [
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(100.0, 511.0),
                    U(1.0, 20.0),
                    U(0.9, 1.0),
                    U(0.0, 0.1),
                    U(0.0, 0.1),
                    U(0.05, 0.1),
                ],
            },
            Subclass::DosBack => SubclassSpec {
                name: "dos_back",
                class: "dos",
                protocol: &[("tcp", 1.0)],
                service: &[("http", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(0.0, 5.0),
                    U(54000.0, 54540.0),
                    LogU(1000.0, 10000.0),
                    zero,
                    U(0.0, 2.0),
                    zero,
                    Const(1.0),
                    U(2.0, 40.0),
                    U(2.0, 40.0),
                    U(0.0, 0.05),
                    U(0.0, 0.05),
                    U(0.8, 1.0),
                    U(0.0, 0.05),
                ],
            },
            Subclass::DosTeardrop => SubclassSpec {
                name: "dos_teardrop",
                class: "dos",
                protocol: &[("udp", 1.0)],
                service: &[("private", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    zero,
                    Const(28.0),
                    zero,
                    U(1.0, 3.0), // wrong_fragment — the signature
                    zero,
                    zero,
                    zero,
                    U(10.0, 150.0),
                    U(10.0, 150.0),
                    Const(0.0),
                    Const(0.0),
                    Const(1.0),
                    Const(0.0),
                ],
            },
            Subclass::DosFtpFlood => SubclassSpec {
                name: "dos_ftp_flood",
                class: "dos",
                protocol: &[("tcp", 1.0)],
                service: &[("ftp_data", 0.8), ("ftp", 0.2)],
                flag: &[("SF", 0.6), ("RSTR", 0.4)],
                numeric: [
                    zero,
                    LogU(300.0, 5000.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(100.0, 400.0), // flood-scale connection count
                    U(100.0, 400.0),
                    U(0.0, 0.2),
                    U(0.0, 0.3),
                    U(0.8, 1.0),
                    U(0.0, 0.1),
                ],
            },
            Subclass::ProbePortsweep => SubclassSpec {
                name: "probe_portsweep",
                class: "probe",
                protocol: &[("tcp", 1.0)],
                service: &[("private", 0.8), ("other", 0.2)],
                flag: &[("REJ", 0.5), ("RSTR", 0.5)],
                numeric: [
                    zero,
                    U(0.0, 10.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 10.0),
                    U(1.0, 3.0),
                    U(0.0, 0.2),
                    U(0.7, 1.0),
                    U(0.0, 0.2),
                    U(0.7, 1.0), // scanning many different services
                ],
            },
            Subclass::ProbeIpsweep => SubclassSpec {
                name: "probe_ipsweep",
                class: "probe",
                protocol: &[("icmp", 1.0)],
                service: &[("eco_i", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    zero,
                    U(8.0, 20.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 5.0),
                    U(1.0, 5.0),
                    Const(0.0),
                    Const(0.0),
                    Const(1.0),
                    Const(0.0),
                ],
            },
            Subclass::ProbeSatan => SubclassSpec {
                name: "probe_satan",
                class: "probe",
                protocol: &[("tcp", 0.8), ("udp", 0.2)],
                service: &[("private", 0.4), ("other", 0.3), ("finger", 0.3)],
                flag: &[("REJ", 0.4), ("SF", 0.4), ("RSTR", 0.2)],
                numeric: [
                    zero,
                    U(0.0, 20.0),
                    U(0.0, 20.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 20.0),
                    U(1.0, 5.0),
                    U(0.0, 0.3),
                    U(0.3, 0.8),
                    U(0.0, 0.3),
                    U(0.5, 1.0),
                ],
            },
            Subclass::NmapLike => SubclassSpec {
                name: "probe_nmap_like",
                class: "probe",
                protocol: &[("tcp", 0.7), ("icmp", 0.3)],
                service: &[("private", 0.6), ("eco_i", 0.4)],
                flag: &[("SH", 0.8), ("REJ", 0.2)],
                numeric: [
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 6.0),
                    U(1.0, 3.0),
                    U(0.0, 0.2),
                    U(0.2, 0.6),
                    U(0.0, 0.3),
                    U(0.6, 1.0),
                ],
            },
            Subclass::R2lGuessPasswd => SubclassSpec {
                name: "r2l_guess_passwd",
                class: "r2l",
                protocol: &[("tcp", 1.0)],
                service: &[("telnet", 0.6), ("pop_3", 0.4)],
                flag: &[("SF", 0.7), ("RSTR", 0.3)],
                numeric: [
                    U(1.0, 10.0),
                    U(100.0, 300.0),
                    U(200.0, 500.0),
                    zero,
                    zero,
                    U(1.0, 5.0), // failed logins — the signature
                    zero,
                    U(1.0, 3.0),
                    U(1.0, 3.0),
                    U(0.0, 0.1),
                    U(0.0, 0.2),
                    U(0.5, 1.0),
                    U(0.0, 0.2),
                ],
            },
            Subclass::R2lWarezClient => SubclassSpec {
                name: "r2l_warez_client",
                class: "r2l",
                protocol: &[("tcp", 1.0)],
                service: &[("ftp", 0.3), ("ftp_data", 0.7)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(10.0, 2000.0),
                    LogU(200.0, 2000.0),
                    LogU(5_000.0, 5_000_000.0),
                    zero,
                    U(0.0, 8.0), // hot indicators only *partially* separate
                    zero,
                    Const(1.0),
                    U(1.0, 5.0),
                    U(1.0, 5.0),
                    U(0.0, 0.05),
                    U(0.0, 0.05),
                    U(0.6, 1.0),
                    U(0.0, 0.2),
                ],
            },
            Subclass::R2lFtpWrite => SubclassSpec {
                name: "r2l_ftp_write",
                class: "r2l",
                protocol: &[("tcp", 1.0)],
                service: &[("ftp", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(10.0, 200.0),
                    U(200.0, 800.0),
                    U(100.0, 400.0),
                    zero,
                    U(2.0, 6.0),
                    zero,
                    Const(1.0),
                    U(1.0, 3.0),
                    U(1.0, 3.0),
                    Const(0.0),
                    Const(0.0),
                    U(0.5, 1.0),
                    U(0.0, 0.2),
                ],
            },
            // Deliberately camouflaged: the contest's test-time r2l mass
            // (snmpguess/snmpgetattack) was nearly indistinguishable from
            // normal UDP traffic, which is why every learner's r2l recall
            // collapsed. This template overlaps normal_dns on every
            // attribute except a slightly narrower byte band.
            Subclass::SnmpGuess => SubclassSpec {
                name: "r2l_snmp_guess",
                class: "r2l",
                protocol: &[("udp", 1.0)],
                service: &[("domain_u", 0.85), ("snmp", 0.15)],
                flag: &[("SF", 1.0)],
                numeric: [
                    zero,
                    U(40.0, 120.0),
                    U(50.0, 500.0),
                    zero,
                    zero,
                    zero,
                    zero,
                    U(1.0, 50.0),
                    U(1.0, 50.0),
                    Const(0.0),
                    Const(0.0),
                    U(0.9, 1.0),
                    U(0.0, 0.05),
                ],
            },
            Subclass::U2rBufferOverflow => SubclassSpec {
                name: "u2r_buffer_overflow",
                class: "u2r",
                protocol: &[("tcp", 1.0)],
                service: &[("telnet", 1.0)],
                flag: &[("SF", 1.0)],
                numeric: [
                    U(50.0, 500.0),
                    U(1000.0, 6000.0),
                    U(200.0, 2000.0),
                    zero,
                    U(1.0, 5.0),
                    zero,
                    Const(1.0),
                    U(1.0, 3.0),
                    U(1.0, 3.0),
                    Const(0.0),
                    Const(0.0),
                    U(0.5, 1.0),
                    U(0.0, 0.2),
                ],
            },
        }
    }
}

/// The training-distribution subclass mix (fractions mirror the contest's
/// 10% training sample: probe 0.83%, r2l 0.23%, u2r 0.01%).
pub fn train_mix() -> Vec<(Subclass, f64)> {
    vec![
        (Subclass::NormalHttp, 0.100),
        (Subclass::NormalSmtp, 0.030),
        (Subclass::NormalFtp, 0.027),
        (Subclass::NormalDns, 0.020),
        (Subclass::NormalBusy, 0.020),
        (Subclass::DosSmurf, 0.570),
        (Subclass::DosNeptune, 0.200),
        (Subclass::DosBack, 0.004),
        (Subclass::DosTeardrop, 0.002),
        (Subclass::DosFtpFlood, 0.0157),
        (Subclass::ProbePortsweep, 0.0030),
        (Subclass::ProbeIpsweep, 0.0030),
        (Subclass::ProbeSatan, 0.0023),
        (Subclass::R2lGuessPasswd, 0.0010),
        (Subclass::R2lWarezClient, 0.0010),
        (Subclass::R2lFtpWrite, 0.0003),
        (Subclass::U2rBufferOverflow, 0.0001),
    ]
}

/// The test-distribution mix: probe grows to 1.34%, r2l to 5.2% (dominated
/// by the novel `SnmpGuess`), and a novel probe subclass appears.
pub fn test_mix() -> Vec<(Subclass, f64)> {
    vec![
        (Subclass::NormalHttp, 0.095),
        (Subclass::NormalSmtp, 0.028),
        (Subclass::NormalFtp, 0.027),
        (Subclass::NormalDns, 0.020),
        (Subclass::NormalBusy, 0.020),
        (Subclass::DosSmurf, 0.450),
        (Subclass::DosNeptune, 0.220),
        (Subclass::DosBack, 0.010),
        (Subclass::DosTeardrop, 0.005),
        (Subclass::DosFtpFlood, 0.0500),
        (Subclass::ProbePortsweep, 0.0040),
        (Subclass::ProbeIpsweep, 0.0040),
        (Subclass::ProbeSatan, 0.0030),
        (Subclass::NmapLike, 0.0024),
        (Subclass::R2lGuessPasswd, 0.0070),
        (Subclass::R2lWarezClient, 0.0040),
        (Subclass::R2lFtpWrite, 0.0010),
        (Subclass::SnmpGuess, 0.0400),
        (Subclass::U2rBufferOverflow, 0.0008),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{attr_index, build_schema_builder};
    use rand::SeedableRng;

    #[test]
    fn every_spec_emits_valid_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = build_schema_builder();
        for (sub, _) in train_mix().iter().chain(test_mix().iter()) {
            for _ in 0..5 {
                sub.spec().emit(&mut b, &mut rng);
            }
        }
        let d = b.finish();
        assert!(d.n_rows() > 0);
    }

    #[test]
    fn novel_subclasses_absent_from_training_mix() {
        let train = train_mix();
        assert!(!train.iter().any(|(s, _)| matches!(s, Subclass::SnmpGuess)));
        assert!(!train.iter().any(|(s, _)| matches!(s, Subclass::NmapLike)));
        let test = test_mix();
        assert!(test.iter().any(|(s, _)| matches!(s, Subclass::SnmpGuess)));
    }

    #[test]
    fn r2l_presence_signature_overlaps_dos() {
        // The paper's motivating example: an ftp-based r2l rule also covers
        // dos flooding. Verify the simulator plants that overlap.
        let warez = Subclass::R2lWarezClient.spec();
        let flood = Subclass::DosFtpFlood.spec();
        let services =
            |spec: &SubclassSpec| -> Vec<&str> { spec.service.iter().map(|(s, _)| *s).collect() };
        let shared: Vec<&str> = services(&warez)
            .into_iter()
            .filter(|s| services(&flood).contains(s))
            .collect();
        assert!(
            !shared.is_empty(),
            "warez and ftp_flood must share services"
        );
    }

    #[test]
    fn guess_passwd_has_failed_logins_signature() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = build_schema_builder();
        for _ in 0..50 {
            Subclass::R2lGuessPasswd.spec().emit(&mut b, &mut rng);
        }
        let d = b.finish();
        let nfl = attr_index("num_failed_logins");
        for row in 0..d.n_rows() {
            assert!(
                d.num(nfl, row) >= 1.0,
                "guess_passwd row without failed logins"
            );
        }
    }

    #[test]
    fn numdist_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = NumDist::U(2.0, 5.0).sample(&mut rng);
            assert!((2.0..5.0).contains(&u));
            let l = NumDist::LogU(10.0, 1000.0).sample(&mut rng);
            assert!((10.0..1000.0001).contains(&l));
            assert_eq!(NumDist::Const(7.0).sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn pick_respects_zero_weight() {
        let mut rng = StdRng::seed_from_u64(4);
        let choice: Choice = &[("a", 0.0), ("b", 1.0)];
        for _ in 0..100 {
            assert_eq!(pick(choice, &mut rng), "b");
        }
    }
}
