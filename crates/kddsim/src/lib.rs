//! A KDD-CUP'99-style network-intrusion dataset **simulator**.
//!
//! The paper's section 4 evaluates PNrule on the KDD-CUP'99 contest data —
//! ~5 million connection records from a monitored military network, five
//! classes (`normal`, `dos`, `probe`, `r2l`, `u2r`), with two rare classes
//! (`probe` 0.83%, `r2l` 0.23% of the 10% training sample) and a test set
//! with a *different* class distribution and *new attack subclasses*.
//!
//! The real traces are not redistributable, so this crate generates a
//! synthetic equivalent that preserves the properties the experiment
//! actually exercises:
//!
//! * the KDD'99 schema shape — categorical `protocol_type` / `service` /
//!   `flag` plus numeric traffic counters and rates;
//! * the contest's class proportions in train and the **shifted**
//!   proportions in test (probe 1.34%, r2l 5.2%);
//! * subclass structure per attack category (e.g. `smurf`/`neptune`/
//!   `back`/`teardrop`/`ftp_flood` inside `dos`), with **test-only novel
//!   subclasses** (`nmap_like` probes, `snmp_guess` r2l) exactly as the
//!   contest test set contained attacks absent from training;
//! * the paper's headline overlap: the presence signature of `r2l`
//!   (ftp-flavoured services) also covers `dos` ftp flooding, so a learner
//!   must model the *absence* of dos indicators to be precise.
//!
//! Absolute scores on this simulation differ from the paper's; the method
//! ordering and the response to PNrule's `rp`/`rn`/P-rule-length knobs are
//! what the reproduction checks.
//!
//! # Example
//!
//! ```
//! use pnr_kddsim::{generate_test, generate_train};
//!
//! let train = generate_train(20_000, 7);
//! let test = generate_test(10_000, 8);
//! let r2l = train.class_code("r2l").unwrap();
//! let train_frac = train.class_counts()[r2l as usize] as f64 / train.n_rows() as f64;
//! let test_frac = test.class_counts()[r2l as usize] as f64 / test.n_rows() as f64;
//! assert!(test_frac > 5.0 * train_frac, "test distribution is shifted");
//! ```

pub mod drift;
pub mod faults;
mod schema;
mod subclass;

pub use drift::{DriftSchedule, DriftStream, Mix};
pub use faults::{row_fields, FaultCensus, FaultInjector, InjectedFault};
pub use schema::{
    attr_index, build_schema_builder, try_attr_index, ATTR_NAMES, CLASSES, FLAGS, N_ATTRS,
    PROTOCOLS, SERVICES,
};
pub use subclass::{test_mix, train_mix, Subclass, SubclassSpec};

use pnr_data::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a training-distribution dataset of `n` records.
pub fn generate_train(n: usize, seed: u64) -> Dataset {
    generate_with_mix(n, seed, &train_mix())
}

/// Generates a test-distribution dataset of `n` records (shifted class
/// proportions, novel subclasses).
pub fn generate_test(n: usize, seed: u64) -> Dataset {
    generate_with_mix(n, seed, &test_mix())
}

/// Generates `n` records from an explicit subclass mix (weights need not be
/// normalised). Deterministic in `seed`.
pub fn generate_with_mix(n: usize, seed: u64, mix: &[(Subclass, f64)]) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let counts = apportion(n, mix);

    let mut b = build_schema_builder();
    b.reserve(n);
    for ((subclass, _), &count) in mix.iter().zip(&counts) {
        let spec = subclass.spec();
        for _ in 0..count {
            spec.emit(&mut b, &mut rng);
        }
    }
    b.finish()
}

/// Largest-remainder apportionment of `n` records over the mix: every
/// subclass gets its exact share (stochastic rounding would lose rare
/// subclasses entirely at small `n`). Pure in its inputs — the streaming
/// and materialising generators share it so their emission plans agree.
fn apportion(n: usize, mix: &[(Subclass, f64)]) -> Vec<usize> {
    assert!(!mix.is_empty(), "mix must not be empty");
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    assert!(total > 0.0, "mix weights must sum to a positive value");
    let mut counts: Vec<usize> = mix
        .iter()
        .map(|(_, w)| ((w / total) * n as f64).floor() as usize)
        .collect();
    let assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = mix
        .iter()
        .enumerate()
        .map(|(i, (_, w))| (i, (w / total) * n as f64 - counts[i] as f64))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    for k in 0..n - assigned {
        counts[remainders[k % remainders.len()].0] += 1;
    }
    counts
}

/// A streaming generator: the same records [`generate_with_mix`] would
/// materialise, emitted as bounded-size [`Dataset`] chunks so tens of
/// millions of rows never exist in memory at once.
///
/// The stream shares the materialising generator's apportionment, RNG
/// seeding and subclass-by-subclass emission order, so the concatenation
/// of its chunks is **bit-identical** to `generate_with_mix(n, seed, mix)`
/// wherever the chunk boundaries fall. Every chunk carries the full fixed
/// KDD schema ([`build_schema_builder`] pre-registers all dictionary
/// values and classes), so chunk schemas never drift.
#[derive(Debug)]
pub struct MixStream {
    rng: StdRng,
    /// `(subclass, records still to emit)` in mix order.
    queue: Vec<(Subclass, usize)>,
    /// Index of the first queue entry with records left.
    head: usize,
    remaining: usize,
}

impl MixStream {
    /// A stream that will emit exactly `n` records. Deterministic in
    /// `seed`: same panics and same records as [`generate_with_mix`].
    pub fn new(n: usize, seed: u64, mix: &[(Subclass, f64)]) -> Self {
        let counts = apportion(n, mix);
        MixStream {
            rng: StdRng::seed_from_u64(seed),
            queue: mix
                .iter()
                .zip(&counts)
                .map(|((s, _), &c)| (*s, c))
                .collect(),
            head: 0,
            remaining: n,
        }
    }

    /// A training-distribution stream of `n` records (see
    /// [`generate_train`]).
    pub fn train(n: usize, seed: u64) -> Self {
        Self::new(n, seed, &train_mix())
    }

    /// Records not yet emitted.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Emits the next chunk of at most `max_rows` records, or `None` once
    /// all `n` have been emitted. Chunk boundaries may fall anywhere —
    /// mid-subclass included — without changing a single emitted bit.
    pub fn next_chunk(&mut self, max_rows: usize) -> Option<Dataset> {
        if self.remaining == 0 || max_rows == 0 {
            return None;
        }
        let take = max_rows.min(self.remaining);
        let mut b = build_schema_builder();
        b.reserve(take);
        let mut emitted = 0;
        while emitted < take && self.head < self.queue.len() {
            let (subclass, left) = &mut self.queue[self.head];
            if *left == 0 {
                self.head += 1;
                continue;
            }
            let spec = subclass.spec();
            while *left > 0 && emitted < take {
                spec.emit(&mut b, &mut self.rng);
                *left -= 1;
                emitted += 1;
            }
        }
        self.remaining -= emitted;
        Some(b.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_proportions_match_contest() {
        let d = generate_train(100_000, 1);
        let frac = |name: &str| {
            d.class_counts()[d.class_code(name).unwrap() as usize] as f64 / d.n_rows() as f64
        };
        assert!(
            (frac("probe") - 0.0083).abs() < 0.002,
            "probe {}",
            frac("probe")
        );
        assert!((frac("r2l") - 0.0023).abs() < 0.001, "r2l {}", frac("r2l"));
        assert!(frac("dos") > 0.7, "dos {}", frac("dos"));
        assert!(frac("normal") > 0.15, "normal {}", frac("normal"));
    }

    #[test]
    fn test_proportions_are_shifted() {
        let d = generate_test(100_000, 2);
        let frac = |name: &str| {
            d.class_counts()[d.class_code(name).unwrap() as usize] as f64 / d.n_rows() as f64
        };
        assert!(
            (frac("probe") - 0.0134).abs() < 0.003,
            "probe {}",
            frac("probe")
        );
        assert!((frac("r2l") - 0.052).abs() < 0.01, "r2l {}", frac("r2l"));
    }

    #[test]
    fn schemas_of_train_and_test_agree() {
        let tr = generate_train(2_000, 3);
        let te = generate_test(2_000, 4);
        assert_eq!(tr.n_attrs(), te.n_attrs());
        for a in 0..tr.n_attrs() {
            assert_eq!(tr.schema().attr(a).name, te.schema().attr(a).name);
            assert_eq!(
                tr.schema().attr(a).dict.len(),
                te.schema().attr(a).dict.len()
            );
        }
        for c in CLASSES {
            assert_eq!(tr.class_code(c), te.class_code(c));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = generate_train(1_000, 5);
        let d2 = generate_train(1_000, 5);
        assert_eq!(d1.labels(), d2.labels());
        for row in (0..d1.n_rows()).step_by(53) {
            assert_eq!(
                d1.num(attr_index("src_bytes"), row),
                d2.num(attr_index("src_bytes"), row)
            );
        }
    }

    #[test]
    fn every_subclass_is_present_at_scale() {
        let d = generate_train(200_000, 6);
        // u2r is the rarest (~0.01%) — even it must appear
        let u2r = d.class_code("u2r").unwrap() as usize;
        assert!(d.class_counts()[u2r] > 0, "u2r missing");
    }

    #[test]
    fn empty_mix_is_rejected() {
        let r = std::panic::catch_unwind(|| generate_with_mix(10, 0, &[]));
        assert!(r.is_err());
    }

    #[test]
    fn streamed_chunks_concatenate_to_the_materialized_dataset() {
        // Chunk boundaries cut through subclasses at several granularities;
        // the concatenation must be bit-identical to one-shot generation.
        let n = 3_000;
        let whole = generate_train(n, 42);
        for chunk_rows in [1usize, 7, 256, 1024, 10_000] {
            let mut stream = MixStream::train(n, 42);
            let mut row0 = 0usize;
            let mut total = 0usize;
            while let Some(chunk) = stream.next_chunk(chunk_rows) {
                assert!(chunk.n_rows() <= chunk_rows);
                for r in 0..chunk.n_rows() {
                    assert_eq!(
                        chunk.label(r),
                        whole.label(row0 + r),
                        "label at {} (chunk_rows {chunk_rows})",
                        row0 + r
                    );
                    for a in 0..whole.n_attrs() {
                        match whole.column(a) {
                            pnr_data::Column::Num(_) => assert_eq!(
                                chunk.num(a, r).to_bits(),
                                whole.num(a, row0 + r).to_bits(),
                                "attr {a} row {}",
                                row0 + r
                            ),
                            pnr_data::Column::Cat(_) => assert_eq!(
                                chunk.cat(a, r),
                                whole.cat(a, r + row0),
                                "attr {a} row {}",
                                row0 + r
                            ),
                        }
                    }
                }
                row0 += chunk.n_rows();
                total += chunk.n_rows();
            }
            assert_eq!(total, n, "stream must emit exactly n rows");
            assert_eq!(stream.remaining(), 0);
        }
    }

    #[test]
    fn stream_chunks_share_the_fixed_schema() {
        let mut stream = MixStream::train(500, 9);
        let whole = generate_train(500, 9);
        while let Some(chunk) = stream.next_chunk(100) {
            assert_eq!(
                chunk.schema().fingerprint(),
                whole.schema().fingerprint(),
                "chunk schema drifted"
            );
        }
    }
}
