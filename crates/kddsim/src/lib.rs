//! A KDD-CUP'99-style network-intrusion dataset **simulator**.
//!
//! The paper's section 4 evaluates PNrule on the KDD-CUP'99 contest data —
//! ~5 million connection records from a monitored military network, five
//! classes (`normal`, `dos`, `probe`, `r2l`, `u2r`), with two rare classes
//! (`probe` 0.83%, `r2l` 0.23% of the 10% training sample) and a test set
//! with a *different* class distribution and *new attack subclasses*.
//!
//! The real traces are not redistributable, so this crate generates a
//! synthetic equivalent that preserves the properties the experiment
//! actually exercises:
//!
//! * the KDD'99 schema shape — categorical `protocol_type` / `service` /
//!   `flag` plus numeric traffic counters and rates;
//! * the contest's class proportions in train and the **shifted**
//!   proportions in test (probe 1.34%, r2l 5.2%);
//! * subclass structure per attack category (e.g. `smurf`/`neptune`/
//!   `back`/`teardrop`/`ftp_flood` inside `dos`), with **test-only novel
//!   subclasses** (`nmap_like` probes, `snmp_guess` r2l) exactly as the
//!   contest test set contained attacks absent from training;
//! * the paper's headline overlap: the presence signature of `r2l`
//!   (ftp-flavoured services) also covers `dos` ftp flooding, so a learner
//!   must model the *absence* of dos indicators to be precise.
//!
//! Absolute scores on this simulation differ from the paper's; the method
//! ordering and the response to PNrule's `rp`/`rn`/P-rule-length knobs are
//! what the reproduction checks.
//!
//! # Example
//!
//! ```
//! use pnr_kddsim::{generate_test, generate_train};
//!
//! let train = generate_train(20_000, 7);
//! let test = generate_test(10_000, 8);
//! let r2l = train.class_code("r2l").unwrap();
//! let train_frac = train.class_counts()[r2l as usize] as f64 / train.n_rows() as f64;
//! let test_frac = test.class_counts()[r2l as usize] as f64 / test.n_rows() as f64;
//! assert!(test_frac > 5.0 * train_frac, "test distribution is shifted");
//! ```

pub mod faults;
mod schema;
mod subclass;

pub use faults::{row_fields, FaultCensus, FaultInjector, InjectedFault};
pub use schema::{
    attr_index, build_schema_builder, try_attr_index, ATTR_NAMES, CLASSES, FLAGS, N_ATTRS,
    PROTOCOLS, SERVICES,
};
pub use subclass::{test_mix, train_mix, Subclass, SubclassSpec};

use pnr_data::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Generates a training-distribution dataset of `n` records.
pub fn generate_train(n: usize, seed: u64) -> Dataset {
    generate_with_mix(n, seed, &train_mix())
}

/// Generates a test-distribution dataset of `n` records (shifted class
/// proportions, novel subclasses).
pub fn generate_test(n: usize, seed: u64) -> Dataset {
    generate_with_mix(n, seed, &test_mix())
}

/// Generates `n` records from an explicit subclass mix (weights need not be
/// normalised). Deterministic in `seed`.
pub fn generate_with_mix(n: usize, seed: u64, mix: &[(Subclass, f64)]) -> Dataset {
    assert!(!mix.is_empty(), "mix must not be empty");
    let total: f64 = mix.iter().map(|(_, w)| w).sum();
    assert!(total > 0.0, "mix weights must sum to a positive value");
    let mut rng = StdRng::seed_from_u64(seed);

    let mut b = build_schema_builder();
    b.reserve(n);

    // Largest-remainder apportionment gives every subclass its exact share
    // (stochastic rounding would lose rare subclasses entirely at small n).
    let mut counts: Vec<usize> = mix
        .iter()
        .map(|(_, w)| ((w / total) * n as f64).floor() as usize)
        .collect();
    let assigned: usize = counts.iter().sum();
    let mut remainders: Vec<(usize, f64)> = mix
        .iter()
        .enumerate()
        .map(|(i, (_, w))| (i, (w / total) * n as f64 - counts[i] as f64))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    for k in 0..n - assigned {
        counts[remainders[k % remainders.len()].0] += 1;
    }

    for ((subclass, _), &count) in mix.iter().zip(&counts) {
        let spec = subclass.spec();
        for _ in 0..count {
            spec.emit(&mut b, &mut rng);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_proportions_match_contest() {
        let d = generate_train(100_000, 1);
        let frac = |name: &str| {
            d.class_counts()[d.class_code(name).unwrap() as usize] as f64 / d.n_rows() as f64
        };
        assert!(
            (frac("probe") - 0.0083).abs() < 0.002,
            "probe {}",
            frac("probe")
        );
        assert!((frac("r2l") - 0.0023).abs() < 0.001, "r2l {}", frac("r2l"));
        assert!(frac("dos") > 0.7, "dos {}", frac("dos"));
        assert!(frac("normal") > 0.15, "normal {}", frac("normal"));
    }

    #[test]
    fn test_proportions_are_shifted() {
        let d = generate_test(100_000, 2);
        let frac = |name: &str| {
            d.class_counts()[d.class_code(name).unwrap() as usize] as f64 / d.n_rows() as f64
        };
        assert!(
            (frac("probe") - 0.0134).abs() < 0.003,
            "probe {}",
            frac("probe")
        );
        assert!((frac("r2l") - 0.052).abs() < 0.01, "r2l {}", frac("r2l"));
    }

    #[test]
    fn schemas_of_train_and_test_agree() {
        let tr = generate_train(2_000, 3);
        let te = generate_test(2_000, 4);
        assert_eq!(tr.n_attrs(), te.n_attrs());
        for a in 0..tr.n_attrs() {
            assert_eq!(tr.schema().attr(a).name, te.schema().attr(a).name);
            assert_eq!(
                tr.schema().attr(a).dict.len(),
                te.schema().attr(a).dict.len()
            );
        }
        for c in CLASSES {
            assert_eq!(tr.class_code(c), te.class_code(c));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = generate_train(1_000, 5);
        let d2 = generate_train(1_000, 5);
        assert_eq!(d1.labels(), d2.labels());
        for row in (0..d1.n_rows()).step_by(53) {
            assert_eq!(
                d1.num(attr_index("src_bytes"), row),
                d2.num(attr_index("src_bytes"), row)
            );
        }
    }

    #[test]
    fn every_subclass_is_present_at_scale() {
        let d = generate_train(200_000, 6);
        // u2r is the rarest (~0.01%) — even it must appear
        let u2r = d.class_code("u2r").unwrap() as usize;
        assert!(d.class_counts()[u2r] > 0, "u2r missing");
    }

    #[test]
    fn empty_mix_is_rejected() {
        let r = std::panic::catch_unwind(|| generate_with_mix(10, 0, &[]));
        assert!(r.is_err());
    }
}
