//! Deterministic fault injection for generated CSV traffic.
//!
//! The serving stack is tested against hostile streams in three places —
//! the `kdd_csv --malformed-rate/--drift-rate` generator, the
//! `pnr-loadgen` traffic driver and the daemon fault-injection suite —
//! and all three must agree on *what* a fault looks like so counter
//! assertions line up. This module is that single source: a seeded
//! [`FaultInjector`] rewrites a row's CSV fields into one of the four
//! fault shapes the serving layer classifies, and keeps an exact
//! [`FaultCensus`] so a harness can assert the daemon's telemetry
//! counters against the number of faults actually injected.
//!
//! Fault taxonomy (mirroring `pnr_core::serving`):
//!
//! * **Malformed** (structural; the row cannot be scored):
//!   [`InjectedFault::TruncatedRow`] drops trailing fields,
//!   [`InjectedFault::UnparsableNumeric`] writes a non-numeric token into
//!   a numeric column. Both quarantine as `RecordError::Structural`.
//! * **Drifted** (scorable under a policy): [`InjectedFault::UnseenCategory`]
//!   writes a category absent from every training dictionary,
//!   [`InjectedFault::NonFiniteNumeric`] writes `NaN`/`inf`. Both count
//!   as unknown values routed through the `UnknownPolicy`.
//!
//! Everything is deterministic in the injector's seed: the same seed and
//! row stream produce the same faults at the same positions.

use pnr_data::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The CSV fields of one dataset row, in schema attribute order (class
/// label excluded). The shared row renderer for every traffic source, so
/// numeric formatting is identical between `kdd_csv` files and
/// `pnr-loadgen` wire traffic.
pub fn row_fields(data: &Dataset, row: usize) -> Vec<String> {
    (0..data.schema().n_attrs())
        .map(|i| {
            let a = data.schema().attr(i);
            if a.is_numeric() {
                data.num(i, row).to_string()
            } else {
                a.dict.name(data.cat(i, row)).to_string()
            }
        })
        .collect()
}

/// One fault shape an injector can write into a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Trailing fields dropped: the row no longer matches the header
    /// width (structural quarantine).
    TruncatedRow,
    /// A numeric column holds a non-numeric token (structural
    /// quarantine).
    UnparsableNumeric,
    /// A categorical column holds a value no training dictionary has
    /// seen (unknown value).
    UnseenCategory,
    /// A numeric column holds `NaN` or `inf` (unknown value).
    NonFiniteNumeric,
}

/// Exact counts of what an injector did, for counter assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCensus {
    /// Rows left untouched.
    pub clean_rows: u64,
    /// Rows truncated below the header width.
    pub truncated_rows: u64,
    /// Rows given an unparsable numeric field.
    pub unparsable_numerics: u64,
    /// Rows given an out-of-dictionary category.
    pub unseen_categories: u64,
    /// Rows given a NaN/infinite numeric field.
    pub non_finite_numerics: u64,
}

impl FaultCensus {
    /// Rows that were faulted in any way.
    pub fn faulted_rows(&self) -> u64 {
        self.truncated_rows
            + self.unparsable_numerics
            + self.unseen_categories
            + self.non_finite_numerics
    }

    /// Rows that became structurally unscorable.
    pub fn malformed_rows(&self) -> u64 {
        self.truncated_rows + self.unparsable_numerics
    }

    /// Rows that stayed scorable but carry unknown values.
    pub fn drifted_rows(&self) -> u64 {
        self.unseen_categories + self.non_finite_numerics
    }

    /// One human-readable census line for a generator's stderr report.
    pub fn summary(&self) -> String {
        format!(
            "fault census: {} truncated, {} unparsable-numeric, {} unseen-category, \
             {} non-finite ({} clean)",
            self.truncated_rows,
            self.unparsable_numerics,
            self.unseen_categories,
            self.non_finite_numerics,
            self.clean_rows
        )
    }
}

/// A seeded source of row faults at configured rates.
///
/// Per row, a malformed fault fires with probability `malformed_rate`;
/// otherwise a drift fault fires with probability `drift_rate`; otherwise
/// the row passes through clean. Within each family the concrete shape
/// alternates pseudo-randomly between its two variants (falling back to
/// the injectable one when a row offers no column of the needed type).
#[derive(Debug)]
pub struct FaultInjector {
    rng: StdRng,
    malformed_rate: f64,
    drift_rate: f64,
    census: FaultCensus,
    novel_seq: u64,
}

impl FaultInjector {
    /// Builds an injector; rates must be in `[0, 1]`.
    pub fn new(seed: u64, malformed_rate: f64, drift_rate: f64) -> Result<Self, String> {
        for (name, rate) in [("malformed", malformed_rate), ("drift", drift_rate)] {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("{name} rate must be in [0, 1], got {rate}"));
            }
        }
        Ok(FaultInjector {
            // decouple the fault stream from the data-generation stream
            // so the same --seed yields the same rows with or without
            // injection enabled
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            malformed_rate,
            drift_rate,
            census: FaultCensus::default(),
            novel_seq: 0,
        })
    }

    /// What this injector has done so far.
    pub fn census(&self) -> &FaultCensus {
        &self.census
    }

    /// Possibly rewrites one row's fields in place. `numeric` and
    /// `categorical` list the field indices eligible for value faults
    /// (the caller knows its column layout; a class column is simply
    /// left out). Returns the fault applied, if any.
    pub fn inject(
        &mut self,
        fields: &mut Vec<String>,
        numeric: &[usize],
        categorical: &[usize],
    ) -> Option<InjectedFault> {
        let fault = self.pick(fields.len(), numeric, categorical);
        match fault {
            Some(InjectedFault::TruncatedRow) => {
                let keep = self.rng.gen_range(0..fields.len());
                fields.truncate(keep);
                self.census.truncated_rows += 1;
            }
            Some(InjectedFault::UnparsableNumeric) => {
                let col = numeric[self.rng.gen_range(0..numeric.len())];
                if let Some(f) = fields.get_mut(col) {
                    *f = "not-a-number".to_string();
                }
                self.census.unparsable_numerics += 1;
            }
            Some(InjectedFault::UnseenCategory) => {
                let col = categorical[self.rng.gen_range(0..categorical.len())];
                self.novel_seq += 1;
                if let Some(f) = fields.get_mut(col) {
                    // never collides with a simulator dictionary entry
                    *f = format!("zz-novel-{}", self.novel_seq);
                }
                self.census.unseen_categories += 1;
            }
            Some(InjectedFault::NonFiniteNumeric) => {
                let col = numeric[self.rng.gen_range(0..numeric.len())];
                let token = if self.rng.gen_bool(0.5) { "NaN" } else { "inf" };
                if let Some(f) = fields.get_mut(col) {
                    *f = token.to_string();
                }
                self.census.non_finite_numerics += 1;
            }
            None => self.census.clean_rows += 1,
        }
        fault
    }

    /// Rolls the fault family and shape for one row, degrading to
    /// whatever the row's column layout can express.
    fn pick(
        &mut self,
        width: usize,
        numeric: &[usize],
        categorical: &[usize],
    ) -> Option<InjectedFault> {
        // Both family rolls consume RNG state unconditionally so the
        // fault positions for a given seed do not depend on the rates.
        let malformed = self.rng.gen_bool(self.malformed_rate);
        let drifted = self.rng.gen_bool(self.drift_rate);
        if malformed {
            let truncate = self.rng.gen_bool(0.5);
            if (truncate && width > 0) || numeric.is_empty() {
                if width == 0 {
                    return None;
                }
                return Some(InjectedFault::TruncatedRow);
            }
            return Some(InjectedFault::UnparsableNumeric);
        }
        if drifted {
            let unseen = self.rng.gen_bool(0.5);
            if (unseen && !categorical.is_empty()) || numeric.is_empty() {
                if categorical.is_empty() {
                    return None;
                }
                return Some(InjectedFault::UnseenCategory);
            }
            return Some(InjectedFault::NonFiniteNumeric);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> Vec<String> {
        vec!["1".into(), "tcp".into(), "2.5".into(), "http".into()]
    }

    #[test]
    fn rates_are_validated() {
        assert!(FaultInjector::new(1, -0.1, 0.0).is_err());
        assert!(FaultInjector::new(1, 0.0, 1.5).is_err());
        assert!(FaultInjector::new(1, f64::NAN, 0.0).is_err());
        assert!(FaultInjector::new(1, 1.0, 1.0).is_ok());
    }

    #[test]
    fn zero_rates_leave_rows_clean() {
        let mut inj = FaultInjector::new(7, 0.0, 0.0).unwrap();
        for _ in 0..50 {
            let mut f = fields();
            assert_eq!(inj.inject(&mut f, &[0, 2], &[1, 3]), None);
            assert_eq!(f, fields());
        }
        assert_eq!(inj.census().clean_rows, 50);
        assert_eq!(inj.census().faulted_rows(), 0);
    }

    #[test]
    fn full_malformed_rate_always_malformes() {
        let mut inj = FaultInjector::new(3, 1.0, 0.0).unwrap();
        for _ in 0..50 {
            let mut f = fields();
            let fault = inj.inject(&mut f, &[0, 2], &[1, 3]).expect("fault");
            match fault {
                InjectedFault::TruncatedRow => assert!(f.len() < 4),
                InjectedFault::UnparsableNumeric => {
                    assert!(f.contains(&"not-a-number".to_string()));
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
        assert_eq!(inj.census().malformed_rows(), 50);
        assert!(inj.census().truncated_rows > 0);
        assert!(inj.census().unparsable_numerics > 0);
    }

    #[test]
    fn full_drift_rate_always_drifts_and_keeps_width() {
        let mut inj = FaultInjector::new(5, 0.0, 1.0).unwrap();
        for _ in 0..50 {
            let mut f = fields();
            let fault = inj.inject(&mut f, &[0, 2], &[1, 3]).expect("fault");
            assert_eq!(f.len(), 4, "drift never changes the width");
            match fault {
                InjectedFault::UnseenCategory => {
                    assert!(f.iter().any(|v| v.starts_with("zz-novel-")));
                }
                InjectedFault::NonFiniteNumeric => {
                    assert!(f.iter().any(|v| v == "NaN" || v == "inf"));
                }
                other => panic!("unexpected fault {other:?}"),
            }
        }
        assert_eq!(inj.census().drifted_rows(), 50);
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mut inj = FaultInjector::new(seed, 0.3, 0.3).unwrap();
            let mut out = Vec::new();
            for _ in 0..200 {
                let mut f = fields();
                inj.inject(&mut f, &[0, 2], &[1, 3]);
                out.push(f.join(","));
            }
            (out, *inj.census())
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11).0, run(12).0, "different seeds fault differently");
    }

    #[test]
    fn missing_column_kinds_degrade_gracefully() {
        // no numeric columns: malformed can only truncate, drift can only
        // write unseen categories
        let mut inj = FaultInjector::new(9, 0.5, 0.5).unwrap();
        for _ in 0..100 {
            let mut f = vec!["tcp".to_string(), "http".to_string()];
            if let Some(fault) = inj.inject(&mut f, &[], &[0, 1]) {
                assert!(
                    matches!(
                        fault,
                        InjectedFault::TruncatedRow | InjectedFault::UnseenCategory
                    ),
                    "{fault:?}"
                );
            }
        }
        assert_eq!(inj.census().unparsable_numerics, 0);
        assert_eq!(inj.census().non_finite_numerics, 0);
    }

    #[test]
    fn row_fields_match_the_schema_layout() {
        let data = crate::generate_train(5, 7);
        for row in 0..5 {
            let f = row_fields(&data, row);
            assert_eq!(f.len(), crate::N_ATTRS);
            // numeric fields parse back; categorical fields are in-dict
            for (i, v) in f.iter().enumerate() {
                let a = data.schema().attr(i);
                if a.is_numeric() {
                    assert!(v.parse::<f64>().is_ok(), "attr {i}: {v}");
                } else {
                    assert!(a.dict.code(v).is_some(), "attr {i}: {v}");
                }
            }
        }
    }

    #[test]
    fn census_summary_mentions_every_kind() {
        let census = FaultCensus {
            clean_rows: 10,
            truncated_rows: 1,
            unparsable_numerics: 2,
            unseen_categories: 3,
            non_finite_numerics: 4,
        };
        let s = census.summary();
        for needle in [
            "1 truncated",
            "2 unparsable",
            "3 unseen",
            "4 non-finite",
            "10 clean",
        ] {
            assert!(s.contains(needle), "{s}");
        }
        assert_eq!(census.faulted_rows(), 10);
    }
}
