//! Property-based tests for the KDD simulator.

use pnr_kddsim::{generate_with_mix, test_mix, train_mix, Subclass, CLASSES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_size_is_exact(n in 100usize..5_000, seed in 0u64..50) {
        let d = generate_with_mix(n, seed, &train_mix());
        prop_assert_eq!(d.n_rows(), n);
    }

    #[test]
    fn class_codes_are_stable_across_sizes_and_seeds(
        n1 in 100usize..2_000,
        n2 in 100usize..2_000,
        s1 in 0u64..50,
        s2 in 0u64..50,
    ) {
        let d1 = generate_with_mix(n1, s1, &train_mix());
        let d2 = generate_with_mix(n2, s2, &test_mix());
        for c in CLASSES {
            prop_assert_eq!(d1.class_code(c), d2.class_code(c));
        }
        for a in 0..d1.n_attrs() {
            prop_assert_eq!(d1.schema().attr(a).dict.len(), d2.schema().attr(a).dict.len());
        }
    }

    #[test]
    fn largest_remainder_apportionment_is_exact(
        n in 50usize..3_000,
        w1 in 1u32..100,
        w2 in 1u32..100,
        w3 in 1u32..100,
    ) {
        let mix = vec![
            (Subclass::NormalHttp, w1 as f64),
            (Subclass::DosSmurf, w2 as f64),
            (Subclass::R2lGuessPasswd, w3 as f64),
        ];
        let d = generate_with_mix(n, 1, &mix);
        prop_assert_eq!(d.n_rows(), n);
        // every subclass with positive weight gets within ±1 of its share
        let total = (w1 + w2 + w3) as f64;
        let counts = d.class_counts();
        let expect_r2l = n as f64 * w3 as f64 / total;
        let r2l = d.class_code("r2l").unwrap() as usize;
        prop_assert!(
            (counts[r2l] as f64 - expect_r2l).abs() <= 1.0,
            "r2l count {} vs expected {expect_r2l}",
            counts[r2l]
        );
    }

    #[test]
    fn numeric_features_are_finite(n in 200usize..1_000, seed in 0u64..20) {
        let d = generate_with_mix(n, seed, &test_mix());
        for a in 3..d.n_attrs() {
            for row in 0..d.n_rows() {
                prop_assert!(d.num(a, row).is_finite());
            }
        }
    }

    #[test]
    fn determinism(n in 200usize..1_000, seed in 0u64..50) {
        let d1 = generate_with_mix(n, seed, &train_mix());
        let d2 = generate_with_mix(n, seed, &train_mix());
        prop_assert_eq!(d1.labels(), d2.labels());
    }
}
