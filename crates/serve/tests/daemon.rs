//! Fault-injection integration suite for the scoring daemon: hot-swap
//! under sustained load, worker panics, corrupt swaps, backpressure,
//! deadlines, graceful drain, kill -9 recovery, and the serving-binary
//! exit-code convention — all driven over the real TCP protocol against
//! real `pnr-serve` / `pnr-loadgen` processes.

use serde::Content;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnr_daemon_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains a tiny dos-vs-rest artifact (the same model every CLI test
/// uses) and saves it under `dir`.
fn make_artifact(dir: &Path, name: &str, seed: u64) -> PathBuf {
    let train = pnr_kddsim::generate_train(800, seed);
    let target = train.class_code("dos").unwrap();
    let params = pnr_core::PnruleParams::default();
    let (model, report) =
        pnr_core::PnruleLearner::new(params.clone()).fit_with_report(&train, target);
    let artifact =
        pnr_core::ModelArtifact::new(model, params, report, train.schema().clone()).unwrap();
    let path = dir.join(name);
    artifact.save(&path).unwrap();
    path
}

struct Daemon {
    child: Child,
    addr: String,
    stdout: BufReader<ChildStdout>,
}

impl Daemon {
    /// Starts `pnr-serve` with `args` and waits for its listening line.
    fn start(args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pnr-serve"))
            .args(args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut stdout = BufReader::new(child.stdout.take().unwrap());
        let mut line = String::new();
        stdout.read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("pnr-serve listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
            .to_string();
        Daemon {
            child,
            addr,
            stdout,
        }
    }

    /// Waits for exit and returns (exit code, remaining stdout).
    fn wait(mut self) -> (Option<i32>, String) {
        let status = self.child.wait().unwrap();
        let mut rest = String::new();
        std::io::Read::read_to_string(&mut self.stdout, &mut rest).unwrap();
        (status.code(), rest)
    }

    fn kill9(mut self) {
        self.child.kill().unwrap(); // SIGKILL on unix
        self.child.wait().unwrap();
    }
}

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
    }

    fn recv(&mut self) -> Content {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "daemon closed the connection");
        serde_json::parse(line.trim()).unwrap_or_else(|e| panic!("bad reply {line:?}: {e}"))
    }

    fn request(&mut self, line: &str) -> Content {
        self.send(line);
        self.recv()
    }

    /// Declares the KDD header; returns the hello reply.
    fn hello(&mut self) -> Content {
        let columns: Vec<String> = pnr_kddsim::ATTR_NAMES
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect();
        let reply = self.request(&format!(
            "{{\"cmd\":\"hello\",\"columns\":[{}]}}",
            columns.join(",")
        ));
        assert!(is_ok(&reply), "{reply:?}");
        reply
    }

    /// Builds a `score` line with `batch` clean rows from `data`.
    fn score_line(data: &pnr_data::Dataset, id: usize, batch: usize) -> String {
        let rows: Vec<String> = (0..batch)
            .map(|j| {
                let fields = pnr_kddsim::row_fields(data, (id * batch + j) % data.n_rows());
                let quoted: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
                format!("[{}]", quoted.join(","))
            })
            .collect();
        format!(
            "{{\"cmd\":\"score\",\"id\":\"r{id}\",\"rows\":[{}]}}",
            rows.join(",")
        )
    }
}

fn is_ok(v: &Content) -> bool {
    v.get("ok") == Some(&Content::Bool(true))
}

fn ju64(v: &Content, key: &str) -> u64 {
    match v.get(key) {
        Some(Content::U64(n)) => *n,
        other => panic!("no u64 {key}: {other:?}"),
    }
}

fn jstr<'a>(v: &'a Content, key: &str) -> &'a str {
    match v.get(key) {
        Some(Content::Str(s)) => s,
        other => panic!("no string {key}: {other:?}"),
    }
}

fn counter(stats: &Content, name: &str) -> u64 {
    let counters = stats.get("counters").expect("counters in stats");
    ju64(counters, name)
}

#[test]
fn hot_swap_under_load_drops_and_misroutes_nothing() {
    let dir = temp_dir("swapload");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let a2 = make_artifact(&dir, "a2.artifact", 11);
    let daemon = Daemon::start(&["--model", a1.to_str().unwrap(), "--workers", "4"]);
    let data = pnr_kddsim::generate_train(400, 3);

    let mut client = Client::connect(&daemon.addr);
    client.hello();

    // a second connection swaps the model 3 times while traffic runs;
    // swaps fire at fixed request milestones so the interleaving is
    // deterministic regardless of machine speed
    let mut ctl = Client::connect(&daemon.addr);
    let swaps = [(50usize, &a2), (100, &a1), (150, &a2)];

    const REQUESTS: usize = 200;
    const BATCH: usize = 4;
    let mut epochs_seen = [0u64; 8];
    for i in 0..REQUESTS {
        if let Some(pos) = swaps.iter().position(|(at, _)| *at == i) {
            let reply = ctl.request(&format!(
                "{{\"cmd\":\"swap\",\"path\":\"{}\"}}",
                swaps[pos].1.display()
            ));
            assert!(is_ok(&reply), "swap {pos}: {reply:?}");
            assert_eq!(ju64(&reply, "epoch"), pos as u64 + 2);
        }
        let reply = client.request(&Client::score_line(&data, i, BATCH));
        assert!(is_ok(&reply), "request {i}: {reply:?}");
        assert_eq!(jstr(&reply, "id"), format!("r{i}"), "no misrouted reply");
        // zero dropped or misrouted records: every row of every batch
        // scores cleanly against whichever epoch served it
        assert_eq!(
            ju64(&reply, "scored"),
            BATCH as u64,
            "request {i}: {reply:?}"
        );
        assert_eq!(ju64(&reply, "errors"), 0, "request {i}: {reply:?}");
        let epoch = ju64(&reply, "epoch") as usize;
        assert!((1..=4).contains(&epoch), "request {i}: epoch {epoch}");
        epochs_seen[epoch] += 1;
    }
    assert!(
        epochs_seen[1] > 0 && epochs_seen.iter().skip(2).sum::<u64>() > 0,
        "traffic spanned the swaps: {epochs_seen:?}"
    );

    // per-epoch accounting: every request landed in exactly one epoch
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(counter(&stats, "requests_served"), REQUESTS as u64);
    assert_eq!(counter(&stats, "requests_shed"), 0);
    assert_eq!(counter(&stats, "worker_panics"), 0);
    assert_eq!(counter(&stats, "model_swaps"), 3);
    assert_eq!(counter(&stats, "swap_failures"), 0);
    let epochs = match stats.get("epochs") {
        Some(Content::Seq(s)) => s,
        other => panic!("no epochs: {other:?}"),
    };
    assert_eq!(epochs.len(), 4, "one entry per published epoch");
    let total: u64 = epochs.iter().map(|e| ju64(e, "served")).sum();
    assert_eq!(total, REQUESTS as u64, "per-epoch counts sum to the total");
    for (slot, e) in epochs.iter().enumerate() {
        assert_eq!(ju64(e, "epoch"), slot as u64 + 1);
        assert_eq!(
            ju64(e, "served"),
            epochs_seen[slot + 1],
            "epoch {}",
            slot + 1
        );
    }

    let reply = client.request("{\"cmd\":\"shutdown\"}");
    assert!(is_ok(&reply), "{reply:?}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_worker_panic_is_isolated_and_service_continues() {
    let dir = temp_dir("panic");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "2",
        "--enable-fault-injection",
    ]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    let reply = client.request(&Client::score_line(&data, 0, 4));
    assert!(is_ok(&reply), "{reply:?}");

    let reply = client.request("{\"cmd\":\"panic\"}");
    assert!(!is_ok(&reply));
    assert_eq!(jstr(&reply, "error"), "worker_panic");
    assert!(
        jstr(&reply, "detail").contains("injected fault"),
        "panic message captured: {reply:?}"
    );

    // the respawned worker keeps serving
    for i in 1..10 {
        let reply = client.request(&Client::score_line(&data, i, 4));
        assert!(is_ok(&reply), "after panic, request {i}: {reply:?}");
    }
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(counter(&stats, "worker_panics"), 1);
    assert_eq!(ju64(&stats, "worker_respawns"), 1);
    assert_eq!(ju64(&stats, "workers_alive"), 2, "pool capacity restored");
    // the panicked request still counts as answered
    assert_eq!(counter(&stats, "requests_served"), 11);

    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_corrupt_swap_is_a_logged_no_op_with_zero_failed_requests() {
    let dir = temp_dir("corrupt");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    // two corruption shapes: truncated garbage and a flipped checksum
    let garbage = dir.join("garbage.artifact");
    std::fs::write(&garbage, "pnrule-artifact v9999 {").unwrap();
    let flipped = dir.join("flipped.artifact");
    let mut bytes = std::fs::read(&a1).unwrap();
    let last = bytes.len() - 2;
    bytes[last] = bytes[last].wrapping_add(1);
    std::fs::write(&flipped, &bytes).unwrap();

    let daemon = Daemon::start(&["--model", a1.to_str().unwrap()]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    for (k, bad) in [&garbage, &flipped, Path::new("/nonexistent/x.artifact")]
        .iter()
        .enumerate()
    {
        // traffic flows before, through, and after the failed swap
        let reply = client.request(&Client::score_line(&data, k, 4));
        assert!(is_ok(&reply), "{reply:?}");
        assert_eq!(ju64(&reply, "epoch"), 1, "old model keeps serving");

        let reply = client.request(&format!(
            "{{\"cmd\":\"swap\",\"path\":\"{}\"}}",
            bad.display()
        ));
        assert!(!is_ok(&reply), "corrupt swap {k} must fail: {reply:?}");
        assert_eq!(jstr(&reply, "error"), "swap_failed");

        let reply = client.request(&Client::score_line(&data, 100 + k, 4));
        assert!(is_ok(&reply), "{reply:?}");
        assert_eq!(ju64(&reply, "scored"), 4);
        assert_eq!(ju64(&reply, "errors"), 0, "zero failed requests");
    }

    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(ju64(&stats, "epoch"), 1, "no epoch was published");
    assert_eq!(counter(&stats, "swap_failures"), 3);
    assert_eq!(counter(&stats, "model_swaps"), 0);
    assert_eq!(counter(&stats, "worker_panics"), 0);
    assert_eq!(counter(&stats, "requests_shed"), 0);

    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_sheds_with_typed_rejections_and_exact_accounting() {
    let dir = temp_dir("overload");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "1",
        "--queue-capacity",
        "2",
        "--shed",
        "reject",
        "--enable-fault-injection",
    ]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    // occupy the only worker, then fill the queue, then overflow it
    client.send("{\"cmd\":\"stall\",\"ms\":1000}");
    std::thread::sleep(Duration::from_millis(200)); // worker surely busy
    for i in 0..2 {
        client.send(&Client::score_line(&data, i, 2));
    }
    client.send(&Client::score_line(&data, 2, 2));

    let mut score_ok = 0;
    let mut stall_ok = 0;
    let mut rejected = Vec::new();
    for _ in 0..4 {
        let reply = client.recv();
        if is_ok(&reply) {
            match jstr(&reply, "reply") {
                "score" => score_ok += 1,
                "stall" => stall_ok += 1,
                other => panic!("unexpected reply {other}"),
            }
        } else {
            assert_eq!(jstr(&reply, "error"), "queue_full");
            assert!(
                ju64(&reply, "retry_after_ms") > 0,
                "rejection tells the client when to retry: {reply:?}"
            );
            rejected.push(jstr(&reply, "id").to_string());
        }
    }
    assert_eq!(stall_ok, 1);
    assert_eq!(score_ok, 2, "queued work survives the overload");
    assert_eq!(rejected, ["r2"], "exactly the overflow request was shed");

    // served + shed == submitted
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(counter(&stats, "requests_served"), 3);
    assert_eq!(counter(&stats, "requests_shed"), 1);

    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drop_oldest_policy_evicts_the_oldest_queued_request() {
    let dir = temp_dir("dropoldest");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "1",
        "--queue-capacity",
        "2",
        "--shed",
        "drop-oldest",
        "--enable-fault-injection",
    ]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    client.send("{\"cmd\":\"stall\",\"ms\":1000}");
    std::thread::sleep(Duration::from_millis(200));
    for i in 0..3 {
        client.send(&Client::score_line(&data, i, 2));
    }

    let mut score_ok = Vec::new();
    let mut shed = Vec::new();
    for _ in 0..4 {
        let reply = client.recv();
        if is_ok(&reply) {
            if jstr(&reply, "reply") == "score" {
                score_ok.push(jstr(&reply, "id").to_string());
            }
        } else {
            assert_eq!(jstr(&reply, "error"), "shed");
            shed.push(jstr(&reply, "id").to_string());
        }
    }
    assert_eq!(shed, ["r0"], "the oldest queued request was evicted");
    score_ok.sort();
    assert_eq!(score_ok, ["r1", "r2"], "the newest requests survived");

    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deadlines_expire_with_a_typed_response() {
    let dir = temp_dir("deadline");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "1",
        "--enable-fault-injection",
    ]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    client.send("{\"cmd\":\"stall\",\"ms\":600}");
    std::thread::sleep(Duration::from_millis(100));
    // queued behind a 600ms stall with a 100ms budget: must expire
    let line = Client::score_line(&data, 0, 2).replace("\"rows\"", "\"deadline_ms\":100,\"rows\"");
    client.send(&line);

    let stall = client.recv();
    assert!(is_ok(&stall), "{stall:?}");
    let reply = client.recv();
    assert!(!is_ok(&reply), "{reply:?}");
    assert_eq!(jstr(&reply, "error"), "deadline_exceeded");
    assert_eq!(jstr(&reply, "id"), "r0");

    // deadline_exceeded flows through telemetry
    let stats = client.request("{\"cmd\":\"stats\"}");
    assert_eq!(counter(&stats, "deadline_exceeded"), 1);
    assert_eq!(counter(&stats, "requests_served"), 2, "still answered");

    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill9_restart_resumes_the_last_swapped_model() {
    let dir = temp_dir("kill9");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let a2 = make_artifact(&dir, "a2.artifact", 11);
    let state = dir.join("active.state");

    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--state",
        state.to_str().unwrap(),
    ]);
    let mut client = Client::connect(&daemon.addr);
    let reply = client.request(&format!(
        "{{\"cmd\":\"swap\",\"path\":\"{}\"}}",
        a2.display()
    ));
    assert!(is_ok(&reply), "{reply:?}");
    assert_eq!(
        std::fs::read_to_string(&state).unwrap().trim(),
        a2.to_str().unwrap(),
        "state file tracks the activated artifact"
    );
    daemon.kill9();

    // restart with the STALE --model: the state file must win
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--state",
        state.to_str().unwrap(),
    ]);
    let mut client = Client::connect(&daemon.addr);
    client.hello();
    let stats = client.request("{\"cmd\":\"stats\"}");
    let epochs = match stats.get("epochs") {
        Some(Content::Seq(s)) => s,
        other => panic!("no epochs: {other:?}"),
    };
    assert_eq!(
        jstr(&epochs[0], "source"),
        a2.to_str().unwrap(),
        "restart resumed the swapped-in artifact, not the stale --model"
    );
    client.send("{\"cmd\":\"shutdown\"}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_drain_answers_the_backlog_and_flushes_telemetry() {
    let dir = temp_dir("drain");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "1",
        "--enable-fault-injection",
    ]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    // build a backlog behind a stall, then ask for shutdown immediately
    client.send("{\"cmd\":\"stall\",\"ms\":400}");
    std::thread::sleep(Duration::from_millis(100));
    for i in 0..3 {
        client.send(&Client::score_line(&data, i, 2));
    }
    client.send("{\"cmd\":\"shutdown\"}");

    // every queued job is still answered during the drain
    let mut score_ok = 0;
    let mut saw_shutdown = false;
    for _ in 0..5 {
        let reply = client.recv();
        if is_ok(&reply) {
            match jstr(&reply, "reply") {
                "score" => score_ok += 1,
                "shutdown" => saw_shutdown = true,
                _ => {}
            }
        }
    }
    assert_eq!(score_ok, 3, "backlog drained, not dropped");
    assert!(saw_shutdown);

    let (code, rest) = daemon.wait();
    assert_eq!(code, Some(0), "graceful drain exits 0");
    // the final telemetry report is NDJSON on stdout
    assert!(
        rest.contains("{\"record\":\"counter\",\"name\":\"requests_served\",\"value\":4}"),
        "telemetry flushed on drain: {rest}"
    );
    assert!(rest.contains("\"kind\":\"serve_request\""), "{rest}");
    for line in rest.lines().filter(|l| !l.trim().is_empty()) {
        assert!(serde_json::parse(line).is_ok(), "unparseable: {line}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn requests_after_shutdown_are_refused_with_a_typed_error() {
    let dir = temp_dir("afterdrain");
    let a1 = make_artifact(&dir, "a1.artifact", 7);
    let daemon = Daemon::start(&["--model", a1.to_str().unwrap()]);
    let data = pnr_kddsim::generate_train(100, 3);
    let mut client = Client::connect(&daemon.addr);
    client.hello();

    let reply = client.request("{\"cmd\":\"shutdown\"}");
    assert!(is_ok(&reply), "{reply:?}");
    let reply = client.request(&Client::score_line(&data, 0, 2));
    assert!(!is_ok(&reply), "{reply:?}");
    assert_eq!(jstr(&reply, "error"), "shutting_down");

    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loadgen_drives_hostile_traffic_swap_and_panic_end_to_end() {
    let dir = temp_dir("loadgen");
    // exercise the loadgen trainer too
    let a1 = dir.join("a1.artifact");
    let out = Command::new(env!("CARGO_BIN_EXE_pnr-loadgen"))
        .args(["train", "--out", a1.to_str().unwrap(), "--rows", "800"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let a2 = make_artifact(&dir, "a2.artifact", 11);

    let daemon = Daemon::start(&[
        "--model",
        a1.to_str().unwrap(),
        "--workers",
        "2",
        "--enable-fault-injection",
    ]);
    let out = Command::new(env!("CARGO_BIN_EXE_pnr-loadgen"))
        .args([
            "run",
            "--addr",
            &daemon.addr,
            "--requests",
            "60",
            "--batch",
            "4",
            "--qps",
            "500",
            "--malformed-rate",
            "0.15",
            "--drift-rate",
            "0.15",
            "--swap",
            a2.to_str().unwrap(),
            "--panic-mid-run",
            "--shutdown",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stderr}\n{stdout}");

    let report = stdout
        .lines()
        .find(|l| l.contains("\"record\":\"loadgen\""))
        .unwrap_or_else(|| panic!("no loadgen record in {stdout}"));
    let report = serde_json::parse(report).unwrap();
    assert_eq!(ju64(&report, "score_ok"), 60, "{stdout}");
    assert_eq!(ju64(&report, "worker_panic"), 1);
    assert_eq!(ju64(&report, "swap_ok"), 1);
    assert!(ju64(&report, "row_errors") > 0, "hostile rows surfaced");
    assert!(stdout.contains("\"record\":\"traffic\""), "{stdout}");
    assert!(stdout.contains("\"kind\":\"client_request\""), "{stdout}");
    assert!(stderr.contains("fault census:"), "{stderr}");

    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0), "loadgen --shutdown drained the daemon");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serving_binaries_pin_the_exit_code_convention() {
    // usage errors: 2
    for args in [
        &[][..],
        &["--shed", "sometimes"][..],
        &["--model"][..],
        &["--workers", "0"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_pnr-serve"))
            .args(args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("usage: pnr-serve"),
            "{args:?}"
        );
    }
    for args in [
        &[][..],
        &["run"][..],
        &["train"][..],
        &["run", "--addr", "x", "--malformed-rate", "1.5"][..],
    ] {
        let out = Command::new(env!("CARGO_BIN_EXE_pnr-loadgen"))
            .args(args)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }

    // data/model failures: 1, with a typed artifact error on stderr
    let out = Command::new(env!("CARGO_BIN_EXE_pnr-serve"))
        .args(["--model", "/nonexistent/x.artifact"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error:"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(env!("CARGO_BIN_EXE_pnr-loadgen"))
        .args(["run", "--addr", "127.0.0.1:1", "--requests", "1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}

/// Pins the stats NDJSON schema the sentinel builds on: exact top-level
/// field set, one counter per telemetry name, sketch shapes, and counter
/// monotonicity across polling windows. A field rename here is a wire
/// contract break, not a refactor.
#[test]
fn stats_schema_is_pinned_and_counters_are_monotone() {
    let dir = temp_dir("statschema");
    let model = make_artifact(&dir, "m.artifact", 23);
    let daemon = Daemon::start(&["--model", model.to_str().unwrap()]);
    let data = pnr_kddsim::generate_train(200, 5);

    let mut client = Client::connect(&daemon.addr);
    client.hello();
    let mut ctl = Client::connect(&daemon.addr);

    let keys = |v: &Content| -> Vec<String> {
        match v {
            Content::Map(entries) => entries.iter().map(|(k, _)| k.clone()).collect(),
            other => panic!("expected a map, got {other:?}"),
        }
    };

    let stats = ctl.request("{\"cmd\":\"stats\"}");
    assert!(is_ok(&stats), "{stats:?}");
    assert_eq!(
        keys(&stats),
        [
            "ok",
            "reply",
            "epoch",
            "mode",
            "degraded_reason",
            "active_checksum",
            "lineage",
            "queue_len",
            "queue_capacity",
            "shed_policy",
            "workers",
            "workers_alive",
            "worker_respawns",
            "pending",
            "counters",
            "epochs",
            "score_hist",
            "p_first_match",
            "request_latency",
            "swap_latency",
        ],
        "stats top-level schema changed"
    );
    assert_eq!(jstr(&stats, "mode"), "normal");
    assert_eq!(stats.get("degraded_reason"), Some(&Content::Null));
    assert_eq!(
        stats.get("lineage"),
        Some(&Content::Null),
        "boot has no lineage"
    );
    assert!(!jstr(&stats, "active_checksum").is_empty());

    // every telemetry counter is exported under its stable name
    let exported = keys(stats.get("counters").unwrap());
    for c in pnr_telemetry::Counter::ALL {
        assert!(
            exported.iter().any(|k| k == c.name()),
            "counter {} missing from stats",
            c.name()
        );
    }
    assert_eq!(exported.len(), pnr_telemetry::Counter::ALL.len());

    // epochs entries carry the lineage-relevant fields
    match stats.get("epochs") {
        Some(Content::Seq(entries)) => {
            assert!(!entries.is_empty());
            for e in entries {
                assert_eq!(keys(e), ["epoch", "served", "source", "checksum"]);
            }
        }
        other => panic!("epochs not a sequence: {other:?}"),
    }

    // sketch shapes: 20 score bins, 32 p-first buckets plus a none count
    let bins_len = |v: &Content| match v {
        Content::Seq(s) => s.len(),
        other => panic!("expected bins, got {other:?}"),
    };
    assert_eq!(bins_len(stats.get("score_hist").unwrap()), 20);
    let pfm = stats.get("p_first_match").unwrap();
    assert_eq!(keys(pfm), ["bins", "none"]);
    assert_eq!(bins_len(pfm.get("bins").unwrap()), 32);

    // window boundaries: the counter delta between two polls is exactly
    // the traffic sent between them, and counters never decrease
    let before_rows = counter(&stats, "rows_scored");
    let before_checks = counter(&stats, "requests_served");
    const REQUESTS: usize = 10;
    const BATCH: usize = 20;
    for i in 0..REQUESTS {
        let reply = client.request(&Client::score_line(&data, i, BATCH));
        assert!(is_ok(&reply), "{reply:?}");
    }
    let after = ctl.request("{\"cmd\":\"stats\"}");
    let hist_mass: u64 = match after.get("score_hist") {
        Some(Content::Seq(s)) => s
            .iter()
            .map(|b| match b {
                Content::U64(n) => *n,
                other => panic!("non-u64 bin: {other:?}"),
            })
            .sum(),
        other => panic!("score_hist missing: {other:?}"),
    };
    assert_eq!(
        counter(&after, "rows_scored") - before_rows,
        (REQUESTS * BATCH) as u64,
        "rows_scored window delta"
    );
    assert_eq!(
        hist_mass,
        counter(&after, "rows_scored"),
        "every scored row lands in exactly one score bin"
    );
    assert!(counter(&after, "requests_served") > before_checks);
    for c in pnr_telemetry::Counter::ALL {
        assert!(
            counter(&after, c.name()) >= counter(&stats, c.name()),
            "counter {} regressed between polls",
            c.name()
        );
    }

    let reply = ctl.request("{\"cmd\":\"shutdown\"}");
    assert!(is_ok(&reply), "{reply:?}");
    let (code, _) = daemon.wait();
    assert_eq!(code, Some(0));
    std::fs::remove_dir_all(&dir).ok();
}
