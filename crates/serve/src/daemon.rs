//! The scoring daemon: accept loop, admission control, hot-swap and
//! graceful drain.
//!
//! Life of a request: a connection thread reads one NDJSON line, builds
//! a [`ScoreJob`] against the *currently active* model epoch (capturing
//! the epoch's `Arc` and the connection's column map for that epoch, so
//! a concurrent swap can never mismatch a map with a model), and pushes
//! it into the bounded queue. A pool worker pops it, scores it under the
//! panic boundary, and answers through the connection's writer channel.
//! Every submitted job is answered exactly once — served, shed, deadline
//! -expired or panicked — which is what the fault suite's
//! `served + shed == submitted` assertions rest on.
//!
//! Hot-swap runs entirely off the hot path: the connection thread that
//! received `swap` loads and validates the artifact (with bounded retry
//! on transient I/O) while workers keep scoring the old epoch; only a
//! fully validated model is published, atomically, as epoch N+1. A
//! corrupt artifact is a logged no-op: `swap_failures` ticks, the reply
//! is a typed `swap_failed`, and the old epoch keeps serving.
//!
//! Graceful drain (`shutdown`): the accept loop stops, queued jobs are
//! finished and answered, workers exit, and the final telemetry report
//! is flushed to stdout as NDJSON before the process exits 0. For
//! ungraceful exits (`kill -9`), the state file (see [`crate::state`])
//! remembers the last *activated* artifact so a restart resumes it.

use crate::pool::WorkerPool;
use crate::protocol::{err_line, ok_line, parse_request, Request};
use crate::queue::{BoundedQueue, PushError, PushOutcome, ShedPolicy};
use crate::sink::ServeSink;
use crate::state;
use pnr_core::{
    load_with_retry, ColumnMap, MissingColumnPolicy, ModelArtifact, RecordError, RetryPolicy,
    ScoringEngine, ServingModel, UnknownPolicy,
};
use pnr_telemetry::{Counter, Span, SpanKind, TelemetrySink};
use serde::Content;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often blocking reads and the accept loop wake up to check the
/// shutdown flag.
const POLL: Duration = Duration::from_millis(100);

/// Rows scored between deadline re-checks inside one batch.
const DEADLINE_CHECK_EVERY: usize = 32;

/// Daemon configuration (the CLI maps flags onto this 1:1).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (printed on stdout).
    pub addr: String,
    /// Worker threads scoring requests.
    pub workers: usize,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// What to do with submissions beyond capacity.
    pub shed: ShedPolicy,
    /// Default per-request deadline applied when a `score` carries none.
    pub default_deadline_ms: Option<u64>,
    /// Unknown-value policy for the served models.
    pub unknown: UnknownPolicy,
    /// Missing-column policy for the served models.
    pub missing: MissingColumnPolicy,
    /// Rule-evaluation engine for the served models.
    pub engine: ScoringEngine,
    /// State file remembering the active artifact across restarts.
    pub state_path: Option<PathBuf>,
    /// Enables the `panic` / `stall` fault-injection commands.
    pub fault_injection: bool,
    /// When set, the bound address is written here after listen succeeds,
    /// so supervisors (tests, the drift sentinel, CI) can discover a
    /// port-0 daemon without scraping stdout.
    pub addr_file: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            shed: ShedPolicy::default(),
            default_deadline_ms: None,
            unknown: UnknownPolicy::default(),
            missing: MissingColumnPolicy::default(),
            engine: ScoringEngine::default(),
            state_path: None,
            fault_injection: false,
            addr_file: None,
        }
    }
}

/// Degraded-mode flag plus its operator-readable reason. Set by the
/// drift sentinel (`degrade` command) when drift is critical and refits
/// keep failing; cleared by a successful swap or an explicit
/// `{"cmd":"degrade","on":false}`. Workers read only the atomic flag,
/// so the hot path never takes the reason lock.
#[derive(Debug, Default)]
struct DegradedState {
    on: AtomicBool,
    reason: Mutex<String>,
}

impl DegradedState {
    /// Enters degraded mode; returns `true` on the transition (off → on)
    /// so the caller ticks `degraded_entries` exactly once per entry.
    fn set(&self, reason: &str) -> bool {
        *self.reason.lock().unwrap_or_else(PoisonError::into_inner) = reason.to_string();
        !self.on.swap(true, Ordering::SeqCst)
    }

    fn clear(&self) {
        self.on.store(false, Ordering::SeqCst);
    }

    fn is_on(&self) -> bool {
        self.on.load(Ordering::SeqCst)
    }

    fn reason(&self) -> String {
        self.reason
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// One published model generation. Jobs capture the `Arc`, so an epoch
/// stays alive (and its `served` counter consistent) until its last
/// in-flight request finishes, no matter how many swaps landed since.
#[derive(Debug)]
struct EpochModel {
    epoch: u64,
    source: PathBuf,
    serving: ServingModel,
    served: AtomicU64,
    /// Artifact envelope checksum — the identity swap lineage checks
    /// compare against.
    checksum: String,
    /// Lineage the artifact carried (refit candidates name their parent).
    lineage: Option<pnr_core::ArtifactLineage>,
}

/// What a queued job does when a worker picks it up.
#[derive(Debug)]
enum JobKind {
    /// Score the rows.
    Score,
    /// Panic inside the worker (fault injection).
    Panic,
    /// Sleep this many milliseconds, then reply (fault injection; used to
    /// hold workers busy so backpressure and deadline paths are testable
    /// deterministically).
    Stall(u64),
}

/// One queued unit of work plus everything needed to answer it.
#[derive(Debug)]
struct ScoreJob {
    id: String,
    kind: JobKind,
    rows: Vec<Vec<String>>,
    deadline: Option<Instant>,
    model: Arc<EpochModel>,
    map: Option<Arc<ColumnMap>>,
    respond: mpsc::Sender<String>,
}

/// State shared by the accept loop, connection threads and workers.
struct Shared {
    config: DaemonConfig,
    active: Mutex<Arc<EpochModel>>,
    history: Mutex<Vec<Arc<EpochModel>>>,
    sink: Arc<ServeSink>,
    queue: Arc<BoundedQueue<ScoreJob>>,
    /// Jobs admitted but not yet answered. Zero means fully drained.
    pending: Arc<AtomicU64>,
    shutdown: AtomicBool,
    degraded: Arc<DegradedState>,
    pool: WorkerPool,
}

impl Shared {
    fn active(&self) -> Arc<EpochModel> {
        self.active
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn history(&self) -> Vec<Arc<EpochModel>> {
        self.history
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

/// Sends `line` as the job's single response and marks it drained.
fn answer(respond: &mpsc::Sender<String>, pending: &AtomicU64, line: String) {
    // a send error means the client hung up; the job is still drained
    let _ = respond.send(line);
    pending.fetch_sub(1, Ordering::SeqCst);
}

fn build_serving(
    artifact: ModelArtifact,
    config: &DaemonConfig,
    sink: Arc<ServeSink>,
) -> ServingModel {
    ServingModel::new(artifact)
        .with_unknown_policy(config.unknown)
        .with_missing_policy(config.missing)
        .with_engine(config.engine)
        .with_sink(sink)
}

/// Worker-side execution of one job. Runs under the pool's panic
/// boundary; anything that escapes here is converted into a typed
/// `worker_panic` response by the pool's `on_panic` callback.
fn execute(job: &ScoreJob, sink: &ServeSink, pending: &AtomicU64, degraded: &DegradedState) {
    match job.kind {
        JobKind::Panic => panic!("injected fault: worker panic requested by client"),
        JobKind::Stall(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            if deadline_expired(job, 0, sink, pending) {
                return;
            }
            sink.add(Counter::RequestsServed, 1);
            job.model.served.fetch_add(1, Ordering::Relaxed);
            answer(
                &job.respond,
                pending,
                ok_line(
                    "stall",
                    vec![
                        ("id", Content::Str(job.id.clone())),
                        ("epoch", Content::U64(job.model.epoch)),
                        ("degraded", Content::Bool(degraded.is_on())),
                    ],
                ),
            );
        }
        JobKind::Score => execute_score(job, sink, pending, degraded),
    }
}

/// True (and answers the job) when its deadline has expired.
fn deadline_expired(
    job: &ScoreJob,
    rows_done: usize,
    sink: &ServeSink,
    pending: &AtomicU64,
) -> bool {
    let Some(deadline) = job.deadline else {
        return false;
    };
    if Instant::now() <= deadline {
        return false;
    }
    sink.add(Counter::DeadlineExceeded, 1);
    sink.add(Counter::RequestsServed, 1);
    answer(
        &job.respond,
        pending,
        err_line(
            "deadline_exceeded",
            "wall-clock deadline expired before the batch finished",
            vec![
                ("id", Content::Str(job.id.clone())),
                ("epoch", Content::U64(job.model.epoch)),
                ("rows_done", Content::U64(rows_done as u64)),
            ],
        ),
    );
    true
}

fn execute_score(job: &ScoreJob, sink: &ServeSink, pending: &AtomicU64, degraded: &DegradedState) {
    let Some(map) = job.map.as_deref() else {
        // admission guarantees a map for Score jobs; never panic if not
        answer(
            &job.respond,
            pending,
            err_line(
                "no_hello",
                "score admitted without a column map",
                Vec::new(),
            ),
        );
        return;
    };
    if deadline_expired(job, 0, sink, pending) {
        return;
    }
    // the span covers the whole batch; a mid-batch deadline return still
    // closes it, so even timed-out requests contribute a latency sample
    let _span = Span::enter(sink, SpanKind::ServeRequest, "");
    let mut results = Vec::with_capacity(job.rows.len());
    let (mut scored, mut errors) = (0u64, 0u64);
    for (i, row) in job.rows.iter().enumerate() {
        if i > 0 && i % DEADLINE_CHECK_EVERY == 0 && deadline_expired(job, i, sink, pending) {
            return;
        }
        results.push(row_result(
            &job.model.serving,
            row,
            map,
            sink,
            &mut scored,
            &mut errors,
        ));
    }
    finish_score(job, sink, pending, degraded, results, scored, errors);
}

fn finish_score(
    job: &ScoreJob,
    sink: &ServeSink,
    pending: &AtomicU64,
    degraded: &DegradedState,
    results: Vec<Content>,
    scored: u64,
    errors: u64,
) {
    sink.add(Counter::RequestsServed, 1);
    job.model.served.fetch_add(1, Ordering::Relaxed);
    answer(
        &job.respond,
        pending,
        ok_line(
            "score",
            vec![
                ("id", Content::Str(job.id.clone())),
                ("epoch", Content::U64(job.model.epoch)),
                ("degraded", Content::Bool(degraded.is_on())),
                ("scored", Content::U64(scored)),
                ("errors", Content::U64(errors)),
                ("results", Content::Seq(results)),
            ],
        ),
    );
}

fn row_result(
    serving: &ServingModel,
    row: &[String],
    map: &ColumnMap,
    sink: &ServeSink,
    scored: &mut u64,
    errors: &mut u64,
) -> Content {
    match serving.score_fields(row, map) {
        Ok(rec) => {
            *scored += 1;
            sink.record_score(rec.score, rec.decision, rec.trace.p_rule);
            Content::Map(vec![
                ("score".to_string(), Content::F64(rec.score)),
                ("decision".to_string(), Content::Bool(rec.decision)),
                ("abstained".to_string(), Content::Bool(rec.abstained)),
                (
                    "unknown_values".to_string(),
                    Content::U64(rec.unknown_values as u64),
                ),
            ])
        }
        Err(e) => {
            *errors += 1;
            let kind = match &e {
                RecordError::Structural { .. } => "structural",
                RecordError::UnknownRejected { .. } => "unknown-rejected",
            };
            Content::Map(vec![
                ("error".to_string(), Content::Str(e.to_string())),
                ("kind".to_string(), Content::Str(kind.to_string())),
            ])
        }
    }
}

/// Per-connection state: the declared header and its reconciliation
/// against the epoch it was built for.
struct ConnState {
    header: Option<Vec<String>>,
    map: Option<Arc<ColumnMap>>,
    map_epoch: u64,
}

fn handle_connection(stream: TcpStream, shared: Arc<Shared>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    // Single writer thread per connection: worker responses and control
    // replies funnel through one channel, so wire writes never interleave.
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for line in rx {
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                break;
            }
        }
    });
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState {
        header: None,
        map: None,
        map_epoch: 0,
    };
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => break,
            Ok(_) => {
                let line = buf.trim().to_string();
                if !line.is_empty() {
                    handle_line(&line, &mut conn, &tx, &shared);
                }
                buf.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // partial data (if any) stays in `buf`; check for drain
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn handle_line(line: &str, conn: &mut ConnState, tx: &mpsc::Sender<String>, shared: &Arc<Shared>) {
    let send = |line: String| {
        let _ = tx.send(line);
    };
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(reason) => {
            send(err_line("bad_request", &reason, Vec::new()));
            return;
        }
    };
    match request {
        Request::Hello { columns } => {
            let active = shared.active();
            match active.serving.reconcile_header(&columns) {
                Ok(map) => {
                    send(ok_line(
                        "hello",
                        vec![
                            ("epoch", Content::U64(active.epoch)),
                            (
                                "engine",
                                Content::Str(active.serving.active_engine().to_string()),
                            ),
                            ("missing", Content::U64(map.n_missing() as u64)),
                            ("extra", Content::U64(map.n_extra() as u64)),
                        ],
                    ));
                    conn.header = Some(columns);
                    conn.map = Some(Arc::new(map));
                    conn.map_epoch = active.epoch;
                }
                Err(e) => send(err_line("schema_mismatch", &e.to_string(), Vec::new())),
            }
        }
        Request::Score {
            id,
            rows,
            deadline_ms,
        } => submit(JobKind::Score, id, rows, deadline_ms, conn, tx, shared),
        Request::Panic => {
            if !shared.config.fault_injection {
                send(err_line(
                    "fault_injection_disabled",
                    "start the daemon with --enable-fault-injection",
                    Vec::new(),
                ));
            } else {
                submit(
                    JobKind::Panic,
                    "panic".to_string(),
                    Vec::new(),
                    None,
                    conn,
                    tx,
                    shared,
                );
            }
        }
        Request::Stall { ms } => {
            if !shared.config.fault_injection {
                send(err_line(
                    "fault_injection_disabled",
                    "start the daemon with --enable-fault-injection",
                    Vec::new(),
                ));
            } else {
                submit(
                    JobKind::Stall(ms),
                    format!("stall-{ms}"),
                    Vec::new(),
                    None,
                    conn,
                    tx,
                    shared,
                );
            }
        }
        Request::Swap { path } => handle_swap(&path, tx, shared),
        Request::Stats => send(stats_line(shared)),
        Request::Degrade { on, reason } => {
            if on {
                if shared.degraded.set(&reason) {
                    shared.sink.add(Counter::DegradedEntries, 1);
                    eprintln!("degraded mode entered: {reason}");
                }
            } else {
                shared.degraded.clear();
                eprintln!("degraded mode cleared");
            }
            send(ok_line(
                "degrade",
                vec![("degraded", Content::Bool(shared.degraded.is_on()))],
            ));
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            send(ok_line(
                "shutdown",
                vec![(
                    "pending",
                    Content::U64(shared.pending.load(Ordering::SeqCst)),
                )],
            ));
        }
    }
}

/// Admission control: captures the active epoch + column map, applies
/// backpressure, and enqueues.
fn submit(
    kind: JobKind,
    id: String,
    rows: Vec<Vec<String>>,
    deadline_ms: Option<u64>,
    conn: &mut ConnState,
    tx: &mpsc::Sender<String>,
    shared: &Arc<Shared>,
) {
    let send = |line: String| {
        let _ = tx.send(line);
    };
    let sink = &shared.sink;
    if shared.shutdown.load(Ordering::SeqCst) {
        sink.add(Counter::RequestsShed, 1);
        send(err_line(
            "shutting_down",
            "daemon is draining; no new work admitted",
            vec![("id", Content::Str(id))],
        ));
        return;
    }
    let active = shared.active();
    let map = match kind {
        JobKind::Score => {
            let Some(header) = conn.header.as_ref() else {
                send(err_line(
                    "no_hello",
                    "send a `hello` with your column header before scoring",
                    vec![("id", Content::Str(id))],
                ));
                return;
            };
            // the map must match the epoch the job will score against
            if conn.map_epoch != active.epoch || conn.map.is_none() {
                match active.serving.reconcile_header(header) {
                    Ok(map) => {
                        conn.map = Some(Arc::new(map));
                        conn.map_epoch = active.epoch;
                    }
                    Err(e) => {
                        send(err_line(
                            "schema_mismatch",
                            &format!("header no longer reconciles after swap: {e}"),
                            vec![("id", Content::Str(id))],
                        ));
                        return;
                    }
                }
            }
            conn.map.clone()
        }
        JobKind::Panic | JobKind::Stall(_) => None,
    };
    let deadline = deadline_ms
        .or(shared.config.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let job = ScoreJob {
        id: id.clone(),
        kind,
        rows,
        deadline,
        model: active,
        map,
        respond: tx.clone(),
    };
    shared.pending.fetch_add(1, Ordering::SeqCst);
    match shared.queue.push(job) {
        Ok(PushOutcome::Enqueued) => {}
        Ok(PushOutcome::DroppedOldest(evicted)) => {
            sink.add(Counter::RequestsShed, 1);
            let ScoreJob { id, respond, .. } = evicted;
            answer(
                &respond,
                &shared.pending,
                err_line(
                    "shed",
                    "evicted by drop-oldest backpressure",
                    vec![("id", Content::Str(id))],
                ),
            );
        }
        Err(PushError::Full) => {
            sink.add(Counter::RequestsShed, 1);
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            send(err_line(
                "queue_full",
                &format!("{} job(s) queued at capacity", shared.queue.capacity()),
                vec![
                    ("id", Content::Str(id)),
                    ("retry_after_ms", Content::U64(50)),
                ],
            ));
        }
        Err(PushError::Closed) => {
            sink.add(Counter::RequestsShed, 1);
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            send(err_line(
                "shutting_down",
                "daemon is draining; no new work admitted",
                vec![("id", Content::Str(id))],
            ));
        }
    }
}

/// Hot-swap: validate off the hot path, publish atomically, persist the
/// state file. Failure of any validation step is a logged no-op.
fn handle_swap(path: &str, tx: &mpsc::Sender<String>, shared: &Arc<Shared>) {
    let send = |line: String| {
        let _ = tx.send(line);
    };
    let sink = shared.sink.clone();
    let span = Span::enter(sink.as_ref(), SpanKind::ServeSwap, "");
    let loaded = load_with_retry(Path::new(path), &RetryPolicy::default());
    match loaded {
        Ok(artifact) => {
            let checksum = match artifact.checksum() {
                Ok(c) => c,
                Err(e) => {
                    sink.add(Counter::SwapFailures, 1);
                    drop(span);
                    eprintln!("swap rejected ({path}): {e}; current model keeps serving");
                    send(err_line("swap_failed", &e.to_string(), Vec::new()));
                    return;
                }
            };
            let lineage = artifact.lineage.clone();
            let target = artifact.target_class().to_string();
            let fingerprint = artifact.schema_fingerprint();
            let serving = build_serving(artifact, &shared.config, sink.clone());
            // Publish under the active lock so the lineage check and the
            // epoch bump are one atomic decision: a candidate that names a
            // parent must name the model it is actually replacing.
            let published = {
                let mut active = shared.active.lock().unwrap_or_else(PoisonError::into_inner);
                match &lineage {
                    Some(lin) if lin.parent_checksum != active.checksum => {
                        Err((lin.parent_checksum.clone(), active.checksum.clone()))
                    }
                    _ => {
                        let fresh = Arc::new(EpochModel {
                            epoch: active.epoch + 1,
                            source: PathBuf::from(path),
                            serving,
                            served: AtomicU64::new(0),
                            checksum: checksum.clone(),
                            lineage,
                        });
                        *active = fresh.clone();
                        Ok(fresh)
                    }
                }
            };
            match published {
                Ok(fresh) => {
                    shared
                        .history
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(fresh.clone());
                    sink.add(Counter::ModelSwaps, 1);
                    // a freshly validated model supersedes degraded mode
                    shared.degraded.clear();
                    if let Some(state_path) = &shared.config.state_path {
                        if let Err(e) = state::persist_active(state_path, Path::new(path)) {
                            eprintln!(
                                "warn: epoch {} activated but state file write failed: {e}",
                                fresh.epoch
                            );
                        }
                    }
                    drop(span);
                    eprintln!("swap: epoch {} now serving {path}", fresh.epoch);
                    let parent = match &fresh.lineage {
                        Some(lin) => Content::Str(lin.parent_checksum.clone()),
                        None => Content::Null,
                    };
                    send(ok_line(
                        "swap",
                        vec![
                            ("epoch", Content::U64(fresh.epoch)),
                            ("target_class", Content::Str(target)),
                            (
                                "schema_fingerprint",
                                Content::Str(format!("{fingerprint:016x}")),
                            ),
                            ("checksum", Content::Str(checksum)),
                            ("parent_checksum", parent),
                        ],
                    ));
                }
                Err((want, have)) => {
                    sink.add(Counter::SwapFailures, 1);
                    drop(span);
                    eprintln!(
                        "swap rejected ({path}): lineage parent {want} is not the active \
                         model {have}; current model keeps serving"
                    );
                    send(err_line(
                        "lineage_mismatch",
                        &format!("candidate's parent checksum {want} != active model {have}"),
                        vec![
                            ("parent_checksum", Content::Str(want)),
                            ("active_checksum", Content::Str(have)),
                        ],
                    ));
                }
            }
        }
        Err(e) => {
            sink.add(Counter::SwapFailures, 1);
            drop(span);
            // the pinned "corrupt artifact mid-swap is a logged no-op"
            eprintln!("swap rejected ({path}): {e}; current model keeps serving");
            send(err_line("swap_failed", &e.to_string(), Vec::new()));
        }
    }
}

fn latency_content(h: &crate::sink::LatencyHistogram) -> Content {
    let p = |q: f64| match h.percentile_ms(q) {
        Some(ms) => Content::F64(ms),
        None => Content::Null,
    };
    Content::Map(vec![
        ("count".to_string(), Content::U64(h.count())),
        ("p50_ms".to_string(), p(0.50)),
        ("p95_ms".to_string(), p(0.95)),
        ("p99_ms".to_string(), p(0.99)),
    ])
}

fn stats_line(shared: &Arc<Shared>) -> String {
    let sink = &shared.sink;
    let counters = Content::Map(
        pnr_telemetry::Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), Content::U64(sink.value(c))))
            .collect(),
    );
    let epochs = Content::Seq(
        shared
            .history()
            .iter()
            .map(|e| {
                Content::Map(vec![
                    ("epoch".to_string(), Content::U64(e.epoch)),
                    (
                        "served".to_string(),
                        Content::U64(e.served.load(Ordering::Relaxed)),
                    ),
                    (
                        "source".to_string(),
                        Content::Str(e.source.display().to_string()),
                    ),
                    ("checksum".to_string(), Content::Str(e.checksum.clone())),
                ])
            })
            .collect(),
    );
    let bins_content = |bins: &[u64]| Content::Seq(bins.iter().map(|&b| Content::U64(b)).collect());
    let (p_bins, p_none) = sink.p_first_match();
    let active = shared.active();
    let lineage = match &active.lineage {
        Some(lin) => Content::Map(vec![
            (
                "parent_checksum".to_string(),
                Content::Str(lin.parent_checksum.clone()),
            ),
            ("window_id".to_string(), Content::U64(lin.window_id)),
            ("verdict".to_string(), Content::Str(lin.verdict.clone())),
        ]),
        None => Content::Null,
    };
    let mode = if shared.degraded.is_on() {
        "degraded"
    } else {
        "normal"
    };
    let degraded_reason = if shared.degraded.is_on() {
        Content::Str(shared.degraded.reason())
    } else {
        Content::Null
    };
    ok_line(
        "stats",
        vec![
            ("epoch", Content::U64(active.epoch)),
            ("mode", Content::Str(mode.to_string())),
            ("degraded_reason", degraded_reason),
            ("active_checksum", Content::Str(active.checksum.clone())),
            ("lineage", lineage),
            ("queue_len", Content::U64(shared.queue.len() as u64)),
            (
                "queue_capacity",
                Content::U64(shared.queue.capacity() as u64),
            ),
            (
                "shed_policy",
                Content::Str(shared.queue.policy().name().to_string()),
            ),
            ("workers", Content::U64(shared.pool.workers() as u64)),
            ("workers_alive", Content::U64(shared.pool.alive() as u64)),
            ("worker_respawns", Content::U64(shared.pool.respawns())),
            (
                "pending",
                Content::U64(shared.pending.load(Ordering::SeqCst)),
            ),
            ("counters", counters),
            ("epochs", epochs),
            ("score_hist", bins_content(&sink.score_hist())),
            (
                "p_first_match",
                Content::Map(vec![
                    ("bins".to_string(), bins_content(&p_bins)),
                    ("none".to_string(), Content::U64(p_none)),
                ]),
            ),
            ("request_latency", latency_content(sink.request_latency())),
            ("swap_latency", latency_content(sink.swap_latency())),
        ],
    )
}

/// Runs the daemon to completion. Returns the process exit code (0 after
/// a graceful drain) or an error message for startup failures the CLI
/// maps to exit code 1.
pub fn run(model_arg: &Path, config: DaemonConfig) -> Result<i32, String> {
    // The state file is the memory that survives kill -9: when present,
    // it names the last artifact a swap activated and wins over --model.
    let (model_path, from_state) = match &config.state_path {
        Some(sp) => match state::read_active(sp) {
            Ok(Some(p)) => (p, true),
            Ok(None) => (model_arg.to_path_buf(), false),
            Err(e) => return Err(format!("cannot read state file: {e}")),
        },
        None => (model_arg.to_path_buf(), false),
    };
    let artifact =
        load_with_retry(&model_path, &RetryPolicy::default()).map_err(|e| e.to_string())?;
    let checksum = artifact.checksum().map_err(|e| e.to_string())?;
    let lineage = artifact.lineage.clone();
    let sink = Arc::new(ServeSink::new());
    let serving = build_serving(artifact, &config, sink.clone());
    eprintln!(
        "active artifact: {} ({}), target `{}`, engine {}",
        model_path.display(),
        if from_state {
            "resumed from state file"
        } else {
            "from --model"
        },
        serving.artifact().target_class(),
        serving.active_engine(),
    );
    if let Some(sp) = &config.state_path {
        state::persist_active(sp, &model_path)
            .map_err(|e| format!("cannot write state file: {e}"))?;
    }
    let first = Arc::new(EpochModel {
        epoch: 1,
        source: model_path,
        serving,
        served: AtomicU64::new(0),
        checksum,
        lineage,
    });
    let queue = Arc::new(BoundedQueue::new(config.queue_capacity, config.shed));
    let pending = Arc::new(AtomicU64::new(0));
    let degraded = Arc::new(DegradedState::default());
    let pool = {
        let (sink, pending, degraded) = (sink.clone(), pending.clone(), degraded.clone());
        let (panic_sink, panic_pending) = (sink.clone(), pending.clone());
        WorkerPool::spawn(
            config.workers,
            queue.clone(),
            move |job: &ScoreJob| execute(job, &sink, &pending, &degraded),
            move |job: ScoreJob, msg: String| {
                panic_sink.add(Counter::WorkerPanics, 1);
                panic_sink.add(Counter::RequestsServed, 1);
                answer(
                    &job.respond,
                    &panic_pending,
                    err_line(
                        "worker_panic",
                        &msg,
                        vec![
                            ("id", Content::Str(job.id)),
                            ("epoch", Content::U64(job.model.epoch)),
                        ],
                    ),
                );
            },
        )
    };
    let shared = Arc::new(Shared {
        config,
        active: Mutex::new(first.clone()),
        history: Mutex::new(vec![first]),
        sink: sink.clone(),
        queue: queue.clone(),
        pending: pending.clone(),
        shutdown: AtomicBool::new(false),
        degraded,
        pool,
    });

    let listener = TcpListener::bind(&shared.config.addr)
        .map_err(|e| format!("cannot bind {}: {e}", shared.config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?;
    println!("pnr-serve listening on {local}");
    let _ = std::io::stdout().flush();
    if let Some(addr_file) = &shared.config.addr_file {
        std::fs::write(addr_file, format!("{local}\n"))
            .map_err(|e| format!("cannot write addr file {}: {e}", addr_file.display()))?;
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot configure listener: {e}"))?;

    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = shared.clone();
                std::thread::spawn(move || handle_connection(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("warn: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    // Drain: stop admitting (submit() refuses under the shutdown flag),
    // let workers finish the backlog, then close the queue so they exit.
    eprintln!(
        "shutdown: draining {} pending job(s)",
        pending.load(Ordering::SeqCst)
    );
    let drain_deadline = Instant::now() + Duration::from_secs(30);
    while pending.load(Ordering::SeqCst) > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    queue.close();
    while shared.pool.alive() > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let leftover = pending.load(Ordering::SeqCst);
    if leftover > 0 {
        eprintln!("warn: {leftover} job(s) unanswered at drain deadline");
    }

    // Final telemetry flush: the NDJSON report is the daemon's last words.
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in sink.ndjson_lines() {
            if writeln!(out, "{line}").is_err() {
                break;
            }
        }
        let _ = out.flush();
    }
    eprintln!(
        "drained: requests_served={} requests_shed={} worker_panics={} model_swaps={}",
        sink.value(Counter::RequestsServed),
        sink.value(Counter::RequestsShed),
        sink.value(Counter::WorkerPanics),
        sink.value(Counter::ModelSwaps),
    );
    Ok(pnr_core::exit::OK)
}
