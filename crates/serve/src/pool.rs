//! The panic-isolated worker pool.
//!
//! A fixed number of workers pop jobs from a shared [`BoundedQueue`] and
//! run them under a panic boundary: a job that panics produces a typed
//! error (via the pool's `on_panic` callback, which still owns the job
//! and can answer its submitter) instead of killing the daemon, and the
//! worker **respawns itself** — the panicking thread hands its slot to a
//! fresh thread and exits, so pool capacity never decays and no panic
//! can poison state shared through the queue.
//!
//! Panic messages are captured with the hook pattern used by the
//! experiment harness: a thread-local `ACTIVE` flag marks threads running
//! an isolated job, the global hook records the payload + location for
//! those threads (instead of spamming stderr) and forwards everything
//! else to the previously installed hook.

use crate::queue::{BoundedQueue, PopResult};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Captures panic messages from worker jobs without letting the global
/// panic hook print for isolated (expected-to-be-caught) panics.
mod panic_capture {
    use std::cell::{Cell, RefCell};
    use std::panic::{AssertUnwindSafe, PanicHookInfo};
    use std::sync::OnceLock;

    thread_local! {
        /// True while the current thread runs a job under [`run_caught`].
        static ACTIVE: Cell<bool> = const { Cell::new(false) };
        /// The formatted message of the most recent captured panic.
        static CAPTURED: RefCell<Option<String>> = const { RefCell::new(None) };
    }

    /// The hook that was installed before ours; panics on threads that are
    /// not running an isolated job are forwarded to it unchanged.
    type PanicHook = Box<dyn for<'a> Fn(&PanicHookInfo<'a>) + Send + Sync>;
    static PREV_HOOK: OnceLock<PanicHook> = OnceLock::new();

    fn install_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let _ = PREV_HOOK.set(std::panic::take_hook());
            std::panic::set_hook(Box::new(|info| {
                if ACTIVE.with(Cell::get) {
                    let msg = payload_str(info.payload());
                    let full = match info.location() {
                        Some(loc) => format!("{msg} at {}:{}", loc.file(), loc.line()),
                        None => msg,
                    };
                    CAPTURED.with(|c| *c.borrow_mut() = Some(full));
                } else if let Some(prev) = PREV_HOOK.get() {
                    prev(info);
                }
            }));
        });
    }

    fn payload_str(payload: &dyn std::any::Any) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// Runs `f`, converting a panic into `Err(message)`. Nothing is
    /// printed for the captured panic; the message comes from the hook,
    /// which sees the original payload and location.
    pub fn run_caught<T>(f: impl FnOnce() -> T) -> Result<T, String> {
        install_hook();
        ACTIVE.with(|a| a.set(true));
        let result = std::panic::catch_unwind(AssertUnwindSafe(f));
        ACTIVE.with(|a| a.set(false));
        result.map_err(|payload| {
            CAPTURED
                .with(|c| c.borrow_mut().take())
                .unwrap_or_else(|| payload_str(payload.as_ref()))
        })
    }
}

/// How long an idle worker waits before re-checking for drain. Bounds
/// shutdown latency without busy-waiting.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// A handle to a spawned pool. Workers run until the queue is closed and
/// drained; the handle only carries observability (live worker count and
/// respawn total for `stats`).
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    alive: Arc<AtomicUsize>,
    respawns: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads popping from `queue`. `work` runs each
    /// job by reference under the panic boundary; if it panics,
    /// `on_panic` receives the job back (by value) together with the
    /// captured panic message, and the worker respawns.
    pub fn spawn<T, W, P>(workers: usize, queue: Arc<BoundedQueue<T>>, work: W, on_panic: P) -> Self
    where
        T: Send + 'static,
        W: Fn(&T) + Send + Sync + 'static,
        P: Fn(T, String) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let pool = WorkerPool {
            workers,
            alive: Arc::new(AtomicUsize::new(0)),
            respawns: Arc::new(AtomicU64::new(0)),
        };
        let work = Arc::new(work);
        let on_panic = Arc::new(on_panic);
        for slot in 0..workers {
            spawn_worker(
                slot,
                queue.clone(),
                work.clone(),
                on_panic.clone(),
                pool.alive.clone(),
                pool.respawns.clone(),
            );
        }
        pool
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Workers currently running their loop.
    pub fn alive(&self) -> usize {
        self.alive.load(Ordering::SeqCst)
    }

    /// Total workers respawned after a caught panic.
    pub fn respawns(&self) -> u64 {
        self.respawns.load(Ordering::SeqCst)
    }
}

fn spawn_worker<T, W, P>(
    slot: usize,
    queue: Arc<BoundedQueue<T>>,
    work: Arc<W>,
    on_panic: Arc<P>,
    alive: Arc<AtomicUsize>,
    respawns: Arc<AtomicU64>,
) where
    T: Send + 'static,
    W: Fn(&T) + Send + Sync + 'static,
    P: Fn(T, String) + Send + Sync + 'static,
{
    let name = format!("pnr-serve-worker-{slot}");
    let spawned = std::thread::Builder::new().name(name).spawn(move || {
        alive.fetch_add(1, Ordering::SeqCst);
        loop {
            match queue.pop_timeout(IDLE_POLL) {
                PopResult::TimedOut => continue,
                PopResult::Closed => break,
                PopResult::Item(job) => {
                    if let Err(msg) = panic_capture::run_caught(|| work(&job)) {
                        // Answer the submitter, then hand this slot to a
                        // fresh thread: the panicking stack dies here and
                        // pool capacity stays constant.
                        on_panic(job, msg);
                        respawns.fetch_add(1, Ordering::SeqCst);
                        alive.fetch_sub(1, Ordering::SeqCst);
                        spawn_worker(slot, queue, work, on_panic, alive, respawns);
                        return;
                    }
                }
            }
        }
        alive.fetch_sub(1, Ordering::SeqCst);
    });
    if spawned.is_err() {
        // Thread spawn failed (resource exhaustion). The slot is lost but
        // the daemon keeps serving on the remaining workers; the alive
        // gauge makes the degradation visible in `stats`.
        eprintln!("warn: could not spawn worker thread for slot {slot}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::ShedPolicy;
    use std::sync::mpsc;
    use std::time::Instant;

    struct TestJob {
        value: u32,
        explode: bool,
        reply: mpsc::Sender<Result<u32, String>>,
    }

    fn pool_with(workers: usize, capacity: usize) -> (Arc<BoundedQueue<TestJob>>, WorkerPool) {
        let queue = Arc::new(BoundedQueue::new(capacity, ShedPolicy::Reject));
        let pool = WorkerPool::spawn(
            workers,
            queue.clone(),
            |job: &TestJob| {
                if job.explode {
                    panic!("boom on {}", job.value);
                }
                job.reply.send(Ok(job.value * 2)).unwrap();
            },
            |job: TestJob, msg: String| {
                job.reply.send(Err(msg)).unwrap();
            },
        );
        (queue, pool)
    }

    #[test]
    fn jobs_run_and_reply() {
        let (queue, _pool) = pool_with(2, 16);
        let (tx, rx) = mpsc::channel();
        for value in 0..8 {
            queue
                .push(TestJob {
                    value,
                    explode: false,
                    reply: tx.clone(),
                })
                .unwrap();
        }
        let mut got: Vec<u32> = (0..8)
            .map(|_| rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, [0, 2, 4, 6, 8, 10, 12, 14]);
        queue.close();
    }

    #[test]
    fn a_panicking_job_is_isolated_and_the_worker_respawns() {
        let (queue, pool) = pool_with(1, 16);
        let (tx, rx) = mpsc::channel();
        queue
            .push(TestJob {
                value: 13,
                explode: true,
                reply: tx.clone(),
            })
            .unwrap();
        let err = rx
            .recv_timeout(Duration::from_secs(5))
            .unwrap()
            .unwrap_err();
        assert!(err.contains("boom on 13"), "{err}");
        assert!(err.contains("pool.rs"), "panic location captured: {err}");

        // the replacement worker serves the next job
        queue
            .push(TestJob {
                value: 4,
                explode: false,
                reply: tx,
            })
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap(), 8);
        assert_eq!(pool.respawns(), 1);
        queue.close();
    }

    #[test]
    fn workers_exit_on_close_after_draining() {
        let (queue, pool) = pool_with(3, 16);
        let (tx, rx) = mpsc::channel();
        for value in 0..5 {
            queue
                .push(TestJob {
                    value,
                    explode: false,
                    reply: tx.clone(),
                })
                .unwrap();
        }
        queue.close();
        // every queued job is still answered
        for _ in 0..5 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap().unwrap();
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.alive() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(pool.alive(), 0, "all workers exited after drain");
    }
}
