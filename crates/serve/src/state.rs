//! Crash-safe persistence of the daemon's active artifact path.
//!
//! The hot-swap command changes which artifact the daemon serves without
//! restarting it — which means the path on the command line goes stale
//! the moment a swap lands. If the process is then killed ungracefully
//! (`kill -9`, OOM), a restart from the command line would silently
//! resurrect the *old* model. The state file closes that hole: the
//! daemon writes the active artifact path at startup and after every
//! successful swap (atomic tmp + rename, same discipline as artifact
//! saves), and on restart a present state file wins over `--model`.
//!
//! The file holds a single line — the artifact path — so it stays
//! trivially inspectable and hand-editable during incident response.

use std::io;
use std::path::{Path, PathBuf};

/// Atomically records `artifact_path` as the active model. Crash-safe:
/// readers see either the previous path or the new one, never a torn
/// write.
pub fn persist_active(state_path: &Path, artifact_path: &Path) -> io::Result<()> {
    let mut tmp = state_path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, format!("{}\n", artifact_path.display()))?;
    std::fs::rename(&tmp, state_path)
}

/// Reads the last persisted artifact path. `Ok(None)` when no state file
/// exists (first start); an unreadable or empty file is an error so a
/// corrupted state file fails loudly instead of silently falling back.
pub fn read_active(state_path: &Path) -> io::Result<Option<PathBuf>> {
    let text = match std::fs::read_to_string(state_path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let line = text.trim();
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("state file {} is empty", state_path.display()),
        ));
    }
    Ok(Some(PathBuf::from(line)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_state(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pnr_state_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("active.state")
    }

    #[test]
    fn round_trips_and_overwrites() {
        let state = temp_state("roundtrip");
        assert_eq!(read_active(&state).unwrap(), None, "no file yet");
        persist_active(&state, Path::new("/models/a.artifact")).unwrap();
        assert_eq!(
            read_active(&state).unwrap(),
            Some(PathBuf::from("/models/a.artifact"))
        );
        persist_active(&state, Path::new("/models/b.artifact")).unwrap();
        assert_eq!(
            read_active(&state).unwrap(),
            Some(PathBuf::from("/models/b.artifact"))
        );
        std::fs::remove_dir_all(state.parent().unwrap()).ok();
    }

    #[test]
    fn empty_state_file_fails_loudly() {
        let state = temp_state("empty");
        std::fs::write(&state, "\n").unwrap();
        assert!(read_active(&state).is_err());
        std::fs::remove_dir_all(state.parent().unwrap()).ok();
    }

    #[test]
    fn no_tmp_residue_after_persist() {
        let state = temp_state("residue");
        persist_active(&state, Path::new("x.artifact")).unwrap();
        let dir = state.parent().unwrap();
        let names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["active.state"], "{names:?}");
        std::fs::remove_dir_all(dir).ok();
    }
}
