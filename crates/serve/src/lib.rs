//! `pnr-serve`: a fault-tolerant batch scoring daemon for PNrule models.
//!
//! The library behind the `pnr-serve` and `pnr-loadgen` binaries. It
//! turns the repo's [`ServingModel`](pnr_core::ServingModel) into a
//! long-running NDJSON-over-TCP service with the robustness properties a
//! rare-class detector needs in production:
//!
//! * **Panic isolation** ([`pool`]): every request runs inside a
//!   `catch_unwind` boundary on a fixed worker pool; a panicking request
//!   becomes a typed `worker_panic` response and the worker respawns.
//! * **Backpressure** ([`queue`]): a bounded queue with an explicit shed
//!   policy (reject with `retry_after_ms`, or drop-oldest), so overload
//!   degrades into typed rejections instead of unbounded memory growth.
//! * **Zero-downtime hot-swap** ([`daemon`]): `swap` validates the new
//!   artifact off the hot path (checksum + schema, with bounded retry on
//!   transient I/O) and publishes it atomically as a new epoch; in-flight
//!   requests finish on the epoch they were admitted against.
//! * **Graceful drain & crash recovery** ([`daemon`], [`state`]):
//!   `shutdown` stops admission, finishes the backlog, flushes telemetry
//!   as NDJSON and exits 0; a state file remembers the active artifact so
//!   `kill -9` + restart resumes the last swapped-in model.
//! * **Telemetry-native observability** ([`sink`]): counters and latency
//!   percentiles come out of the same [`TelemetrySink`]
//!   (pnr_telemetry::TelemetrySink) interface the learners use.
//!
//! The wire protocol is documented in [`protocol`].

pub mod daemon;
pub mod pool;
pub mod protocol;
pub mod queue;
pub mod sink;
pub mod state;

pub use daemon::{run, DaemonConfig};
pub use pool::WorkerPool;
pub use protocol::{err_line, ok_line, parse_request, Request};
pub use queue::{BoundedQueue, PopResult, PushError, PushOutcome, ShedPolicy};
pub use sink::{LatencyHistogram, ServeSink};
pub use state::{persist_active, read_active};
