//! A bounded MPMC job queue with explicit load-shedding.
//!
//! The daemon's admission point: connection threads push scoring jobs,
//! workers pop them. Capacity is fixed at construction; what happens when
//! it is exceeded is a *policy*, not an accident:
//!
//! * [`ShedPolicy::Reject`] — the new job is refused; the caller turns
//!   the refusal into a typed `queue_full` response carrying a
//!   retry-after hint. Favors in-flight work (FIFO fairness).
//! * [`ShedPolicy::DropOldest`] — the oldest queued job is evicted and
//!   handed back to the caller (so *its* submitter gets a typed shed
//!   response), and the new job is admitted. Favors fresh work
//!   (freshness under overload).
//!
//! Either way nothing is silently lost: every admitted or evicted job is
//! accounted for by the caller, which is what lets the fault suite assert
//! `requests_served + requests_shed == requests_submitted` exactly.
//!
//! [`BoundedQueue::close`] flips the queue into drain mode: pops continue
//! until the backlog is empty, further pushes are refused, and blocked
//! workers wake up and observe [`PopResult::Closed`].

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// What to do with a push that would exceed capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Refuse the incoming job (default).
    #[default]
    Reject,
    /// Evict the oldest queued job and admit the incoming one.
    DropOldest,
}

impl ShedPolicy {
    /// Parses the CLI spelling (`reject` | `drop-oldest`).
    pub fn parse(s: &str) -> Option<ShedPolicy> {
        match s {
            "reject" => Some(ShedPolicy::Reject),
            "drop-oldest" => Some(ShedPolicy::DropOldest),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::Reject => "reject",
            ShedPolicy::DropOldest => "drop-oldest",
        }
    }
}

/// Outcome of an accepted push.
#[derive(Debug)]
pub enum PushOutcome<T> {
    /// The job was enqueued within capacity.
    Enqueued,
    /// The job was enqueued after evicting the oldest queued job, which
    /// is returned so the caller can answer its submitter.
    DroppedOldest(T),
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity and the policy is [`ShedPolicy::Reject`].
    Full,
    /// The queue is draining; no new work is admitted.
    Closed,
}

/// Outcome of a timed pop.
#[derive(Debug)]
pub enum PopResult<T> {
    /// A job.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained; the worker should exit.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue. All methods are `&self`; share it via `Arc`.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    policy: ShedPolicy,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize, policy: ShedPolicy) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// A poisoned lock means a holder panicked mid-section; the queue's
    /// state (a deque and a flag) is valid after any interleaving, so
    /// serving continues rather than cascading the panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured shed policy.
    pub fn policy(&self) -> ShedPolicy {
        self.policy
    }

    /// Current backlog length.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the backlog is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Admits a job, sheds per policy, or refuses it.
    pub fn push(&self, item: T) -> Result<PushOutcome<T>, PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        let outcome = if inner.items.len() < self.capacity {
            inner.items.push_back(item);
            PushOutcome::Enqueued
        } else {
            match self.policy {
                ShedPolicy::Reject => return Err(PushError::Full),
                ShedPolicy::DropOldest => {
                    let evicted = inner.items.pop_front();
                    inner.items.push_back(item);
                    match evicted {
                        Some(old) => PushOutcome::DroppedOldest(old),
                        // unreachable (len >= capacity >= 1), but never panic
                        None => PushOutcome::Enqueued,
                    }
                }
            }
        };
        drop(inner);
        self.not_empty.notify_one();
        Ok(outcome)
    }

    /// Waits up to `timeout` for a job. Workers call this in a loop so
    /// they observe [`PopResult::Closed`] promptly during drain.
    pub fn pop_timeout(&self, timeout: Duration) -> PopResult<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return PopResult::Item(item);
            }
            if inner.closed {
                return PopResult::Closed;
            }
            let (guard, wait) = self
                .not_empty
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => PopResult::Item(item),
                    None if inner.closed => PopResult::Closed,
                    None => PopResult::TimedOut,
                };
            }
        }
    }

    /// Switches to drain mode: refuses new pushes, keeps serving the
    /// backlog, and wakes every blocked worker.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("policy", &self.policy)
            .field("closed", &self.is_closed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4, ShedPolicy::Reject);
        for i in 0..4 {
            assert!(matches!(q.push(i), Ok(PushOutcome::Enqueued)));
        }
        for i in 0..4 {
            match q.pop_timeout(Duration::from_millis(10)) {
                PopResult::Item(v) => assert_eq!(v, i),
                other => panic!("{other:?}"),
            }
        }
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            PopResult::TimedOut
        ));
    }

    #[test]
    fn reject_policy_refuses_at_capacity() {
        let q = BoundedQueue::new(2, ShedPolicy::Reject);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3).unwrap_err(), PushError::Full);
        assert_eq!(q.len(), 2, "refused push leaves the backlog intact");
    }

    #[test]
    fn drop_oldest_policy_evicts_the_head() {
        let q = BoundedQueue::new(2, ShedPolicy::DropOldest);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Ok(PushOutcome::DroppedOldest(old)) => assert_eq!(old, 1),
            other => panic!("{other:?}"),
        }
        match q.pop_timeout(Duration::from_millis(10)) {
            PopResult::Item(v) => assert_eq!(v, 2, "head is now the second job"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = BoundedQueue::new(4, ShedPolicy::Reject);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8).unwrap_err(), PushError::Closed);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(10)),
            PopResult::Item(7)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(10)),
            PopResult::Closed
        ));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1, ShedPolicy::Reject));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || {
                // a long timeout that close() must cut short
                matches!(q.pop_timeout(Duration::from_secs(30)), PopResult::Closed)
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        q.close();
        assert!(waiter.join().unwrap(), "blocked pop observed the close");
    }

    #[test]
    fn policy_parses_cli_spellings() {
        assert_eq!(ShedPolicy::parse("reject"), Some(ShedPolicy::Reject));
        assert_eq!(
            ShedPolicy::parse("drop-oldest"),
            Some(ShedPolicy::DropOldest)
        );
        assert_eq!(ShedPolicy::parse("nope"), None);
        assert_eq!(ShedPolicy::DropOldest.name(), "drop-oldest");
    }
}
