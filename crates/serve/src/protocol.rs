//! The daemon's NDJSON wire protocol.
//!
//! One JSON object per line in each direction. Requests carry a `cmd`
//! discriminator; responses always carry `"ok"` plus either a `reply`
//! echo of the command (success) or a machine-readable `error` kind and
//! a human-readable `detail` (failure). Typed error kinds are the
//! protocol's contract with load-shedding and fault-injection tests:
//!
//! | kind                 | meaning                                            |
//! |----------------------|----------------------------------------------------|
//! | `bad_request`        | unparseable line or malformed command              |
//! | `no_hello`           | `score` before a `hello` established a column map  |
//! | `queue_full`         | backpressure rejection; carries `retry_after_ms`   |
//! | `shed`               | job evicted by the drop-oldest policy              |
//! | `shutting_down`      | daemon is draining; no new work admitted           |
//! | `deadline_exceeded`  | per-request wall-clock deadline expired            |
//! | `worker_panic`       | the scoring worker panicked; worker was respawned  |
//! | `swap_failed`        | hot-swap validation failed; old model still active |
//! | `lineage_mismatch`   | swap candidate's parent checksum is not the active model; old model still active |
//! | `schema_mismatch`    | connection header irreconcilable with the model    |
//! | `fault_injection_disabled` | `panic`/`stall` without the daemon flag      |
//!
//! Rows in `score` are sequences of CSV-style fields; numbers are
//! accepted and rendered through Rust's float formatting so a client can
//! send either `"2.5"` or `2.5`.

use serde::Content;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Declares the connection's column header; builds the column map.
    Hello {
        /// Incoming column names, in field order.
        columns: Vec<String>,
    },
    /// Scores a batch of rows.
    Score {
        /// Client-chosen id echoed in the response.
        id: String,
        /// Rows as CSV-style field vectors.
        rows: Vec<Vec<String>>,
        /// Optional wall-clock deadline for the whole batch.
        deadline_ms: Option<u64>,
    },
    /// Hot-swaps the served model to the artifact at `path`.
    Swap {
        /// Artifact path, validated off the hot path.
        path: String,
    },
    /// Reports counters, per-epoch serve counts and latency percentiles.
    Stats,
    /// Enters (`on: true`) or leaves degraded mode. Sent by the drift
    /// sentinel when refits keep failing; the flag is echoed in every
    /// subsequent response envelope and in `stats`.
    Degrade {
        /// `true` to enter degraded mode, `false` to clear it.
        on: bool,
        /// Operator-readable reason, surfaced in `stats`.
        reason: String,
    },
    /// Graceful drain: stop admitting, finish the backlog, flush
    /// telemetry, exit 0.
    Shutdown,
    /// Fault injection: enqueue a job that panics in the worker.
    Panic,
    /// Fault injection: enqueue a job that sleeps `ms` before replying.
    Stall {
        /// Sleep duration in milliseconds.
        ms: u64,
    },
}

/// Parses one request line. `Err` carries a human-readable reason the
/// daemon wraps in a `bad_request` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::parse(line).map_err(|e| format!("unparseable JSON: {e}"))?;
    let cmd = match value.get("cmd") {
        Some(Content::Str(s)) => s.clone(),
        _ => return Err("missing string field `cmd`".to_string()),
    };
    match cmd.as_str() {
        "hello" => {
            let columns = value
                .get("columns")
                .and_then(Content::as_seq)
                .ok_or("`hello` needs a `columns` array")?
                .iter()
                .map(scalar_to_string)
                .collect::<Result<Vec<String>, String>>()?;
            if columns.is_empty() {
                return Err("`columns` must not be empty".to_string());
            }
            Ok(Request::Hello { columns })
        }
        "score" => {
            let id = value.get("id").map(scalar_to_string).transpose()?;
            let rows = value
                .get("rows")
                .and_then(Content::as_seq)
                .ok_or("`score` needs a `rows` array")?
                .iter()
                .map(|row| {
                    row.as_seq()
                        .ok_or_else(|| "each row must be an array of fields".to_string())?
                        .iter()
                        .map(scalar_to_string)
                        .collect::<Result<Vec<String>, String>>()
                })
                .collect::<Result<Vec<Vec<String>>, String>>()?;
            let deadline_ms = match value.get("deadline_ms") {
                None | Some(Content::Null) => None,
                Some(v) => Some(as_u64(v).ok_or("`deadline_ms` must be a non-negative integer")?),
            };
            Ok(Request::Score {
                id: id.unwrap_or_default(),
                rows,
                deadline_ms,
            })
        }
        "swap" => match value.get("path") {
            Some(Content::Str(path)) if !path.is_empty() => {
                Ok(Request::Swap { path: path.clone() })
            }
            _ => Err("`swap` needs a non-empty string `path`".to_string()),
        },
        "stats" => Ok(Request::Stats),
        "degrade" => {
            let on = match value.get("on") {
                Some(Content::Bool(b)) => *b,
                _ => return Err("`degrade` needs a boolean `on`".to_string()),
            };
            let reason = match value.get("reason") {
                None | Some(Content::Null) => String::new(),
                Some(Content::Str(s)) => s.clone(),
                _ => return Err("`reason` must be a string".to_string()),
            };
            Ok(Request::Degrade { on, reason })
        }
        "shutdown" => Ok(Request::Shutdown),
        "panic" => Ok(Request::Panic),
        "stall" => {
            let ms = value
                .get("ms")
                .and_then(as_u64)
                .ok_or("`stall` needs a non-negative integer `ms`")?;
            Ok(Request::Stall { ms })
        }
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// Renders a JSON scalar as a CSV-style field string.
fn scalar_to_string(v: &Content) -> Result<String, String> {
    match v {
        Content::Str(s) => Ok(s.clone()),
        Content::U64(n) => Ok(n.to_string()),
        Content::I64(n) => Ok(n.to_string()),
        Content::F64(x) => Ok(x.to_string()),
        Content::Bool(b) => Ok(b.to_string()),
        Content::Null => Ok(String::new()),
        _ => Err("fields must be scalars".to_string()),
    }
}

fn as_u64(v: &Content) -> Option<u64> {
    match *v {
        Content::U64(n) => Some(n),
        Content::I64(n) => u64::try_from(n).ok(),
        _ => None,
    }
}

/// Builds a success response line: `{"ok":true,"reply":<reply>,...}`.
pub fn ok_line(reply: &str, extra: Vec<(&str, Content)>) -> String {
    let mut entries = vec![
        ("ok".to_string(), Content::Bool(true)),
        ("reply".to_string(), Content::Str(reply.to_string())),
    ];
    entries.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    render(Content::Map(entries))
}

/// Builds a typed error response line:
/// `{"ok":false,"error":<kind>,"detail":<detail>,...}`.
pub fn err_line(kind: &str, detail: &str, extra: Vec<(&str, Content)>) -> String {
    let mut entries = vec![
        ("ok".to_string(), Content::Bool(false)),
        ("error".to_string(), Content::Str(kind.to_string())),
        ("detail".to_string(), Content::Str(detail.to_string())),
    ];
    entries.extend(extra.into_iter().map(|(k, v)| (k.to_string(), v)));
    render(Content::Map(entries))
}

/// Renders a content tree to one line of JSON. Serialization of a content
/// tree cannot fail; the fallback keeps the signature infallible without
/// a panic path.
pub fn render(content: Content) -> String {
    serde_json::to_string(&content)
        .unwrap_or_else(|_| "{\"ok\":false,\"error\":\"internal\"}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_hello_score_and_control_commands() {
        assert_eq!(
            parse_request("{\"cmd\":\"hello\",\"columns\":[\"a\",\"b\"]}").unwrap(),
            Request::Hello {
                columns: vec!["a".to_string(), "b".to_string()]
            }
        );
        let score =
            parse_request("{\"cmd\":\"score\",\"id\":7,\"rows\":[[\"1.5\",\"tcp\"],[2,\"udp\"]]}")
                .unwrap();
        match score {
            Request::Score {
                id,
                rows,
                deadline_ms,
            } => {
                assert_eq!(id, "7");
                assert_eq!(rows, vec![vec!["1.5", "tcp"], vec!["2", "udp"]]);
                assert_eq!(deadline_ms, None);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_request("{\"cmd\":\"swap\",\"path\":\"m.artifact\"}").unwrap(),
            Request::Swap {
                path: "m.artifact".to_string()
            }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"stats\"}").unwrap(),
            Request::Stats
        );
        assert_eq!(
            parse_request("{\"cmd\":\"shutdown\"}").unwrap(),
            Request::Shutdown
        );
        assert_eq!(
            parse_request("{\"cmd\":\"panic\"}").unwrap(),
            Request::Panic
        );
        assert_eq!(
            parse_request("{\"cmd\":\"stall\",\"ms\":250}").unwrap(),
            Request::Stall { ms: 250 }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"degrade\",\"on\":true,\"reason\":\"drift\"}").unwrap(),
            Request::Degrade {
                on: true,
                reason: "drift".to_string()
            }
        );
        assert_eq!(
            parse_request("{\"cmd\":\"degrade\",\"on\":false}").unwrap(),
            Request::Degrade {
                on: false,
                reason: String::new()
            }
        );
    }

    #[test]
    fn score_accepts_deadline_and_numeric_fields() {
        let req = parse_request(
            "{\"cmd\":\"score\",\"id\":\"x\",\"rows\":[[1,2.5,\"tcp\"]],\"deadline_ms\":100}",
        )
        .unwrap();
        match req {
            Request::Score {
                rows, deadline_ms, ..
            } => {
                assert_eq!(rows, vec![vec!["1", "2.5", "tcp"]]);
                assert_eq!(deadline_ms, Some(100));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors_not_panics() {
        for bad in [
            "not json",
            "{}",
            "{\"cmd\":\"nope\"}",
            "{\"cmd\":\"hello\"}",
            "{\"cmd\":\"hello\",\"columns\":[]}",
            "{\"cmd\":\"score\",\"rows\":\"x\"}",
            "{\"cmd\":\"score\",\"rows\":[\"not-a-row\"]}",
            "{\"cmd\":\"score\",\"rows\":[],\"deadline_ms\":-3}",
            "{\"cmd\":\"swap\"}",
            "{\"cmd\":\"stall\"}",
            "{\"cmd\":\"degrade\"}",
            "{\"cmd\":\"degrade\",\"on\":\"yes\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn response_lines_are_parseable_json() {
        let ok = ok_line("score", vec![("epoch", Content::U64(3))]);
        let parsed = serde_json::parse(&ok).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Content::Bool(true)));
        assert_eq!(parsed.get("epoch"), Some(&Content::U64(3)));

        let err = err_line(
            "queue_full",
            "82 jobs queued",
            vec![("retry_after_ms", Content::U64(50))],
        );
        let parsed = serde_json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Content::Bool(false)));
        assert_eq!(
            parsed.get("error"),
            Some(&Content::Str("queue_full".to_string()))
        );
        assert_eq!(parsed.get("retry_after_ms"), Some(&Content::U64(50)));
    }
}
