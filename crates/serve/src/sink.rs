//! The daemon's telemetry sink: lock-free counters plus latency
//! histograms with percentile extraction.
//!
//! [`ServeSink`] implements [`TelemetrySink`] so the scoring hot path —
//! `ServingModel` per-record counters and the daemon's own robustness
//! counters — reports through the exact same interface the learners use.
//! On top of the counter array it turns `serve_request` / `serve_swap`
//! span closes into [`LatencyHistogram`] samples, so latency percentiles
//! come out of the telemetry spans rather than a separate timing path.
//!
//! The histogram is log₂-bucketed: recording is one `fetch_add` on an
//! atomic bucket (workers never contend on a lock for timing), and a
//! percentile reads as "the bucket upper bound where the cumulative
//! count crosses the rank" — coarse (within 2× of exact) but entirely
//! allocation- and lock-free on the record path, which is what a
//! per-request code path wants.

use pnr_telemetry::{Counter, SpanKind, TelemetrySink, N_COUNTERS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets: covers 1ns .. ~584 years, i.e. every `u64`
/// nanosecond value.
const N_BUCKETS: usize = 64;

/// Fixed-width bins of the score-distribution sketch over `[0, 1]`.
pub const SCORE_BINS: usize = 20;

/// P-rule ranks tracked individually by the first-match histogram; ranks
/// beyond this share the last bucket so a swap to a larger model never
/// changes the stats schema.
pub const P_FIRST_BUCKETS: usize = 32;

/// A fixed log₂-bucketed histogram of nanosecond durations.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_of(ns: u64) -> usize {
        // bucket b holds values in (2^(b-1), 2^b]; 0 lands in bucket 0
        (u64::BITS - ns.leading_zeros()) as usize % N_BUCKETS
    }

    /// Upper bound (ns) of bucket `b`.
    fn upper_bound(b: usize) -> u64 {
        1u64 << b
    }

    /// Records one duration.
    pub fn record_ns(&self, ns: u64) {
        self.buckets[Self::bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The duration (ns) below which at least `p` (in `[0, 1]`) of the
    /// samples fall, reported as the matching bucket's upper bound.
    /// `None` on an empty histogram.
    pub fn percentile_ns(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in 0..N_BUCKETS {
            seen += self.buckets[b].load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::upper_bound(b));
            }
        }
        Some(Self::upper_bound(N_BUCKETS - 1))
    }

    /// [`percentile_ns`](Self::percentile_ns) in milliseconds.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        self.percentile_ns(p).map(|ns| ns as f64 / 1e6)
    }

    /// One NDJSON latency line (no trailing newline) for reports:
    /// `{"record":"latency","kind":...,"count":...,"p50_ms":...,...}`.
    pub fn ndjson_line(&self, kind: &str) -> String {
        let fmt = |p: f64| {
            self.percentile_ms(p)
                .map(|ms| format!("{ms:.3}"))
                .unwrap_or_else(|| "null".to_string())
        };
        format!(
            "{{\"record\":\"latency\",\"kind\":\"{kind}\",\"count\":{},\
             \"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{}}}",
            self.count(),
            fmt(0.50),
            fmt(0.95),
            fmt(0.99),
        )
    }
}

/// The daemon-wide sink: one atomic counter per [`Counter`], request and
/// swap latency histograms fed by span closes, plus the two serving-
/// distribution sketches the drift detector consumes — a fixed-bin
/// score histogram (the streaming quantile sketch) and a P-rule
/// first-match histogram.
#[derive(Debug, Default)]
pub struct ServeSink {
    counters: [AtomicU64; N_COUNTERS],
    request_latency: LatencyHistogram,
    swap_latency: LatencyHistogram,
    /// Scores bucketed over `[0, 1]` in `SCORE_BINS` equal bins (scores
    /// land in `min(floor(score * BINS), BINS-1)`; non-finite in bin 0).
    score_hist: [AtomicU64; SCORE_BINS],
    /// Which P-rule matched first, by rank (ranks ≥ `P_FIRST_BUCKETS-1`
    /// pool in the last bucket).
    p_first: [AtomicU64; P_FIRST_BUCKETS],
    /// Rows no P-rule matched.
    p_first_none: AtomicU64,
}

impl ServeSink {
    /// An empty sink.
    pub fn new() -> Self {
        ServeSink::default()
    }

    /// Current value of one counter.
    pub fn value(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Records one scored row into the distribution sketches: its score,
    /// its decision (ticks `decision_positives`) and the rank of the
    /// first matching P-rule (`None` = no match).
    pub fn record_score(&self, score: f64, decision: bool, p_rule: Option<usize>) {
        let bin = if score.is_finite() {
            let scaled = (score.clamp(0.0, 1.0) * SCORE_BINS as f64).floor() as usize;
            scaled.min(SCORE_BINS - 1)
        } else {
            0
        };
        self.score_hist[bin].fetch_add(1, Ordering::Relaxed);
        if decision {
            self.add(Counter::DecisionPositives, 1);
        }
        match p_rule {
            Some(rank) => {
                self.p_first[rank.min(P_FIRST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed)
            }
            None => self.p_first_none.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Snapshot of the score-distribution bins.
    pub fn score_hist(&self) -> [u64; SCORE_BINS] {
        std::array::from_fn(|i| self.score_hist[i].load(Ordering::Relaxed))
    }

    /// Snapshot of the P-rule first-match histogram: `(per-rank bins,
    /// no-match count)`.
    pub fn p_first_match(&self) -> ([u64; P_FIRST_BUCKETS], u64) {
        (
            std::array::from_fn(|i| self.p_first[i].load(Ordering::Relaxed)),
            self.p_first_none.load(Ordering::Relaxed),
        )
    }

    /// The `serve_request` latency histogram.
    pub fn request_latency(&self) -> &LatencyHistogram {
        &self.request_latency
    }

    /// The `serve_swap` latency histogram.
    pub fn swap_latency(&self) -> &LatencyHistogram {
        &self.swap_latency
    }

    /// The full telemetry report as NDJSON lines (no trailing newlines):
    /// every counter in [`Counter::ALL`] order, one latency line per
    /// histogram, then the score and P-rule first-match sketches. This is
    /// what the daemon flushes on graceful drain.
    pub fn ndjson_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = Counter::ALL
            .iter()
            .map(|&c| {
                format!(
                    "{{\"record\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                    c.name(),
                    self.value(c)
                )
            })
            .collect();
        lines.push(
            self.request_latency
                .ndjson_line(SpanKind::ServeRequest.name()),
        );
        lines.push(self.swap_latency.ndjson_line(SpanKind::ServeSwap.name()));
        lines.push(format!(
            "{{\"record\":\"score_hist\",\"bins\":{}}}",
            join_bins(&self.score_hist())
        ));
        let (p_bins, p_none) = self.p_first_match();
        lines.push(format!(
            "{{\"record\":\"p_first_match\",\"bins\":{},\"none\":{p_none}}}",
            join_bins(&p_bins)
        ));
        lines
    }
}

/// Renders a counter slice as a JSON array literal.
fn join_bins(bins: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, b) in bins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&b.to_string());
    }
    out.push(']');
    out
}

impl TelemetrySink for ServeSink {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    fn span_open(&self, _kind: SpanKind, _label: &str) {}

    fn span_close(&self, kind: SpanKind, wall_ns: u64) {
        match kind {
            SpanKind::ServeRequest => self.request_latency.record_ns(wall_ns),
            SpanKind::ServeSwap => self.swap_latency.record_ns(wall_ns),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_telemetry::Span;

    #[test]
    fn histogram_percentiles_are_monotone_upper_bounds() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.percentile_ns(0.50).unwrap();
        let p99 = h.percentile_ns(0.99).unwrap();
        assert!(p50 >= 200, "p50 bound {p50} covers the median sample");
        assert!(p99 >= 100_000, "p99 bound {p99} covers the tail sample");
        assert!(p50 <= p99, "percentiles are monotone");
        // upper bound is within 2x of the true value
        assert!(p99 <= 2 * 131_072, "{p99}");
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_ns(0.5), None);
        assert!(h.ndjson_line("x").contains("\"p50_ms\":null"));
    }

    #[test]
    fn zero_and_max_durations_do_not_panic() {
        let h = LatencyHistogram::new();
        h.record_ns(0);
        h.record_ns(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.percentile_ns(1.0).is_some());
    }

    #[test]
    fn sink_routes_spans_to_the_right_histogram() {
        let sink = ServeSink::new();
        {
            let _req = Span::enter(&sink, SpanKind::ServeRequest, "r");
        }
        {
            let _swap = Span::enter(&sink, SpanKind::ServeSwap, "s");
        }
        {
            // non-serve spans are ignored by the histograms
            let _fit = Span::enter(&sink, SpanKind::Fit, "f");
        }
        assert_eq!(sink.request_latency().count(), 1);
        assert_eq!(sink.swap_latency().count(), 1);
    }

    #[test]
    fn ndjson_report_covers_every_counter_and_both_histograms() {
        let sink = ServeSink::new();
        sink.add(Counter::RequestsServed, 3);
        let lines = sink.ndjson_lines();
        assert_eq!(lines.len(), N_COUNTERS + 4);
        assert!(lines
            .iter()
            .any(|l| l.contains("\"requests_served\"") && l.contains(":3}")));
        assert!(lines.iter().any(|l| l.contains("\"serve_request\"")));
        assert!(lines.iter().any(|l| l.contains("\"serve_swap\"")));
        assert!(lines.iter().any(|l| l.contains("\"score_hist\"")));
        assert!(lines.iter().any(|l| l.contains("\"p_first_match\"")));
        for line in &lines {
            assert!(serde_json::parse(line).is_ok(), "unparseable: {line}");
        }
    }

    #[test]
    fn score_records_land_in_the_right_bins() {
        let sink = ServeSink::new();
        sink.record_score(0.0, false, Some(0));
        sink.record_score(0.049, false, Some(0)); // still bin 0
        sink.record_score(0.5, true, Some(3));
        sink.record_score(1.0, true, Some(100)); // rank pools in last bucket
        sink.record_score(f64::NAN, false, None);
        let bins = sink.score_hist();
        assert_eq!(bins[0], 3, "0.0, 0.049 and NaN share bin 0");
        assert_eq!(bins[10], 1, "0.5 lands at the midpoint bin");
        assert_eq!(bins[SCORE_BINS - 1], 1, "1.0 clamps into the last bin");
        assert_eq!(bins.iter().sum::<u64>(), 5);
        let (p, none) = sink.p_first_match();
        assert_eq!(p[0], 2);
        assert_eq!(p[3], 1);
        assert_eq!(p[P_FIRST_BUCKETS - 1], 1);
        assert_eq!(none, 1);
        assert_eq!(sink.value(Counter::DecisionPositives), 2);
    }
}
