//! `pnr-loadgen` — traffic driver and artifact trainer for `pnr-serve`.
//!
//! ```text
//! pnr-loadgen train --out <artifact> [--rows 2000] [--seed 7]
//! pnr-loadgen run --addr <host:port> [--requests 100] [--batch 16]
//!             [--qps 200] [--seed 7] [--malformed-rate p] [--drift-rate p]
//!             [--mix-schedule step:K|ramp:S:E|recur:P|none]
//!             [--deadline-ms N] [--swap <artifact>] [--panic-mid-run]
//!             [--shutdown]
//! ```
//!
//! `train` fits the same tiny dos-vs-rest KDD-simulation model the test
//! suites use and saves it as an artifact, so a daemon can be stood up
//! without a separate training pipeline.
//!
//! `run` opens one connection, declares the KDD header, and drives
//! paced `score` batches built from the shared [`FaultInjector`] traffic
//! source (`--malformed-rate` / `--drift-rate` match `kdd_csv` exactly).
//! `--mix-schedule` replaces the recycled training rows with a
//! [`DriftStream`](pnr_kddsim::DriftStream): a scheduled mid-run class-
//! mix shift — a step at row K, a linear ramp over rows S..E, or a
//! recurring cycle — reproducible from `--seed` alone, so the drift
//! sentinel's detection lag can be measured against a known shift row.
//! Half-way through it can hot-swap the daemon (`--swap`) and/or inject
//! a worker panic (`--panic-mid-run`). It reports client-side latency
//! percentiles, a traffic census, and the daemon's own `stats` reply as
//! NDJSON on stdout; `--shutdown` ends with a graceful drain request.
//!
//! Exit codes: 0 on a completed run, 1 for connection/model failures,
//! 2 for usage errors.

use pnr_kddsim::{row_fields, FaultInjector, ATTR_NAMES};
use pnr_serve::protocol::render;
use pnr_serve::LatencyHistogram;
use serde::Content;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: pnr-loadgen train --out <artifact> [--rows N] [--seed N]\n\
       pnr-loadgen run (--addr <host:port> | --addr-file <path>) [--requests N] \
[--batch N] [--qps N] [--seed N] [--malformed-rate p] [--drift-rate p] \
[--mix-schedule step:K|ramp:S:E|recur:P|none] [--deadline-ms N] \
[--swap <artifact>] [--panic-mid-run] [--shutdown]";

fn bail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(pnr_core::exit::USAGE as u8)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(pnr_core::exit::DATA_FAILURE as u8)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("train") => train(args),
        Some("run") => run(args),
        _ => bail("first argument must be `train` or `run`"),
    }
}

fn train(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut rows = 2_000usize;
    let mut seed = 7u64;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out = Some(PathBuf::from(v)),
                None => return bail("--out needs a path"),
            },
            "--rows" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => rows = n,
                _ => return bail("--rows needs a positive integer"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => seed = n,
                None => return bail("--seed needs an integer"),
            },
            other => return bail(&format!("unknown train argument {other:?}")),
        }
    }
    let Some(out) = out else {
        return bail("train requires --out");
    };
    let data = pnr_kddsim::generate_train(rows, seed);
    let Some(target) = data.class_code("dos") else {
        return fail("generated dataset has no `dos` class");
    };
    let params = pnr_core::PnruleParams::default();
    let (model, report) =
        pnr_core::PnruleLearner::new(params.clone()).fit_with_report(&data, target);
    let artifact = match pnr_core::ModelArtifact::new(model, params, report, data.schema().clone())
    {
        Ok(a) => a,
        Err(e) => return fail(&format!("cannot build artifact: {e}")),
    };
    if let Err(e) = artifact.save(&out) {
        return fail(&format!("cannot save artifact: {e}"));
    }
    eprintln!(
        "trained target `dos` on {rows} rows (seed {seed}); wrote {}",
        out.display()
    );
    ExitCode::from(pnr_core::exit::OK as u8)
}

struct RunOptions {
    addr: String,
    addr_file: Option<String>,
    requests: usize,
    batch: usize,
    qps: f64,
    seed: u64,
    malformed_rate: f64,
    drift_rate: f64,
    schedule: Option<pnr_kddsim::DriftSchedule>,
    deadline_ms: Option<u64>,
    swap: Option<String>,
    panic_mid_run: bool,
    shutdown: bool,
}

/// Tallies of the typed responses a run received.
#[derive(Default)]
struct RunReport {
    score_ok: u64,
    rows_scored: u64,
    row_errors: u64,
    shed: u64,
    deadline_exceeded: u64,
    worker_panic: u64,
    swap_ok: u64,
    swap_failed: u64,
    other_errors: u64,
    stats_line: Option<String>,
}

fn run(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = RunOptions {
        addr: String::new(),
        addr_file: None,
        requests: 100,
        batch: 16,
        qps: 200.0,
        seed: 7,
        malformed_rate: 0.0,
        drift_rate: 0.0,
        schedule: None,
        deadline_ms: None,
        swap: None,
        panic_mid_run: false,
        shutdown: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => opts.addr = v,
                None => return bail("--addr needs host:port"),
            },
            "--addr-file" => match args.next() {
                Some(v) => opts.addr_file = Some(v),
                None => return bail("--addr-file needs a path"),
            },
            "--requests" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.requests = n,
                _ => return bail("--requests needs a positive integer"),
            },
            "--batch" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => opts.batch = n,
                _ => return bail("--batch needs a positive integer"),
            },
            "--qps" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(q) if q > 0.0 => opts.qps = q,
                _ => return bail("--qps needs a positive number"),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => opts.seed = n,
                None => return bail("--seed needs an integer"),
            },
            "--malformed-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) => opts.malformed_rate = p,
                None => return bail("--malformed-rate needs a number"),
            },
            "--drift-rate" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) => opts.drift_rate = p,
                None => return bail("--drift-rate needs a number"),
            },
            "--mix-schedule" => match args
                .next()
                .as_deref()
                .and_then(pnr_kddsim::DriftSchedule::parse)
            {
                Some(s) => opts.schedule = Some(s),
                None => return bail("--mix-schedule must be step:K, ramp:S:E, recur:P or none"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => opts.deadline_ms = Some(n),
                None => return bail("--deadline-ms needs a non-negative integer"),
            },
            "--swap" => match args.next() {
                Some(v) => opts.swap = Some(v),
                None => return bail("--swap needs an artifact path"),
            },
            "--panic-mid-run" => opts.panic_mid_run = true,
            "--shutdown" => opts.shutdown = true,
            other => return bail(&format!("unknown run argument {other:?}")),
        }
    }
    if opts.addr.is_empty() {
        // a daemon started with --addr-file on port 0 publishes its bound
        // address there; wait for it so launch order does not matter
        let Some(path) = &opts.addr_file else {
            return bail("run requires --addr or --addr-file");
        };
        for _ in 0..100 {
            match std::fs::read_to_string(path) {
                Ok(s) if !s.trim().is_empty() => {
                    opts.addr = s.trim().to_string();
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(100)),
            }
        }
        if opts.addr.is_empty() {
            return fail(&format!("addr file {path} never appeared"));
        }
    }
    // validate rates before touching the network
    let injector = match FaultInjector::new(opts.seed, opts.malformed_rate, opts.drift_rate) {
        Ok(i) => i,
        Err(e) => return bail(&e),
    };
    match drive(&opts, injector) {
        Ok(()) => ExitCode::from(pnr_core::exit::OK as u8),
        Err(e) => fail(&e),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn drive(opts: &RunOptions, mut injector: FaultInjector) -> Result<(), String> {
    let stream =
        TcpStream::connect(&opts.addr).map_err(|e| format!("cannot connect {}: {e}", opts.addr))?;
    let _ = stream.set_nodelay(true);
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .map_err(|e| format!("cannot set read timeout: {e}"))?;
    let mut write_half = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    let mut reader = BufReader::new(stream);

    // handshake: declare the KDD header, lockstep
    let columns = Content::Seq(
        ATTR_NAMES
            .iter()
            .map(|&c| Content::Str(c.to_string()))
            .collect(),
    );
    let hello = render(Content::Map(vec![
        ("cmd".to_string(), Content::Str("hello".to_string())),
        ("columns".to_string(), columns),
    ]));
    writeln!(write_half, "{hello}").map_err(|e| format!("hello write failed: {e}"))?;
    let reply = read_reply(&mut reader, Instant::now() + Duration::from_secs(10))?
        .ok_or("daemon closed the connection during hello")?;
    let parsed = serde_json::parse(&reply).map_err(|e| format!("bad hello reply: {e}"))?;
    if parsed.get("ok") != Some(&Content::Bool(true)) {
        return Err(format!("hello rejected: {reply}"));
    }

    // traffic source shared with kdd_csv: generated rows + fault injector
    let data = pnr_kddsim::generate_train(2_000, opts.seed);
    let numeric: Vec<usize> = (0..data.schema().n_attrs())
        .filter(|&i| data.schema().attr(i).is_numeric())
        .collect();
    let categorical: Vec<usize> = (0..data.schema().n_attrs())
        .filter(|&i| !data.schema().attr(i).is_numeric())
        .collect();

    let send_times: Arc<Mutex<Vec<Option<Instant>>>> =
        Arc::new(Mutex::new(vec![None; opts.requests]));
    let hist = Arc::new(LatencyHistogram::new());
    let sent = Arc::new(AtomicU64::new(0));

    // Sender paces writes on its own thread so the reader below can keep
    // draining responses — in-flight depth is bounded by the daemon's
    // queue, not by lockstep round trips.
    let sender = {
        let send_times = send_times.clone();
        let sent = sent.clone();
        let requests = opts.requests;
        let batch = opts.batch;
        let gap = Duration::from_secs_f64(1.0 / opts.qps);
        let deadline_ms = opts.deadline_ms;
        let swap = opts.swap.clone();
        let panic_mid_run = opts.panic_mid_run;
        let shutdown = opts.shutdown;
        let schedule = opts.schedule.clone();
        let seed = opts.seed;
        let n_rows = data.n_rows();
        std::thread::spawn(move || -> (pnr_kddsim::FaultCensus, Result<(), String>) {
            // with a schedule the rows come from a DriftStream whose mix
            // evolves with the row index; without one, the static
            // training rows are recycled as before
            let mut stream = schedule.map(|s| pnr_kddsim::DriftStream::new(seed, s));
            let start = Instant::now();
            let halfway = requests / 2;
            for i in 0..requests {
                let target = start + gap.mul_f64(i as f64);
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                let rows: Vec<Content> = match stream.as_mut() {
                    Some(stream) => {
                        let chunk = stream.next_chunk(batch);
                        (0..chunk.n_rows())
                            .map(|r| {
                                let mut fields = row_fields(&chunk, r);
                                injector.inject(&mut fields, &numeric, &categorical);
                                Content::Seq(fields.into_iter().map(Content::Str).collect())
                            })
                            .collect()
                    }
                    None => (0..batch)
                        .map(|j| {
                            let mut fields = row_fields(&data, (i * batch + j) % n_rows);
                            injector.inject(&mut fields, &numeric, &categorical);
                            Content::Seq(fields.into_iter().map(Content::Str).collect())
                        })
                        .collect(),
                };
                let mut entries = vec![
                    ("cmd".to_string(), Content::Str("score".to_string())),
                    ("id".to_string(), Content::Str(format!("r{i}"))),
                    ("rows".to_string(), Content::Seq(rows)),
                ];
                if let Some(ms) = deadline_ms {
                    entries.push(("deadline_ms".to_string(), Content::U64(ms)));
                }
                let line = render(Content::Map(entries));
                lock(&send_times)[i] = Some(Instant::now());
                if let Err(e) = writeln!(write_half, "{line}") {
                    return (*injector.census(), Err(format!("write failed: {e}")));
                }
                sent.fetch_add(1, Ordering::SeqCst);
                if i == halfway {
                    if let Some(path) = &swap {
                        let swap_line = render(Content::Map(vec![
                            ("cmd".to_string(), Content::Str("swap".to_string())),
                            ("path".to_string(), Content::Str(path.clone())),
                        ]));
                        if let Err(e) = writeln!(write_half, "{swap_line}") {
                            return (*injector.census(), Err(format!("swap write failed: {e}")));
                        }
                    }
                    if panic_mid_run && writeln!(write_half, "{{\"cmd\":\"panic\"}}").is_err() {
                        return (*injector.census(), Err("panic write failed".to_string()));
                    }
                }
            }
            if writeln!(write_half, "{{\"cmd\":\"stats\"}}").is_err() {
                return (*injector.census(), Err("stats write failed".to_string()));
            }
            if shutdown && writeln!(write_half, "{{\"cmd\":\"shutdown\"}}").is_err() {
                return (*injector.census(), Err("shutdown write failed".to_string()));
            }
            (*injector.census(), Ok(()))
        })
    };

    // every score gets exactly one reply; plus swap, panic, stats, shutdown
    let expected = opts.requests
        + usize::from(opts.swap.is_some())
        + usize::from(opts.panic_mid_run)
        + 1
        + usize::from(opts.shutdown);
    let mut report = RunReport::default();
    let wall_deadline = Instant::now() + Duration::from_secs(120);
    let mut received = 0usize;
    while received < expected {
        match read_reply(&mut reader, wall_deadline)? {
            Some(line) => {
                received += 1;
                tally(&line, &mut report, &send_times, &hist);
            }
            None => break, // EOF: daemon drained or connection lost
        }
    }
    let (census, send_result) = sender.join().unwrap_or_else(|_| {
        (
            pnr_kddsim::FaultCensus::default(),
            Err("sender thread panicked".to_string()),
        )
    });
    send_result?;
    if received < expected {
        return Err(format!(
            "connection closed after {received}/{expected} replies"
        ));
    }

    // the run report, NDJSON on stdout
    println!(
        "{{\"record\":\"loadgen\",\"requests\":{},\"score_ok\":{},\"rows_scored\":{},\
         \"row_errors\":{},\"shed\":{},\"deadline_exceeded\":{},\"worker_panic\":{},\
         \"swap_ok\":{},\"swap_failed\":{},\"other_errors\":{}}}",
        opts.requests,
        report.score_ok,
        report.rows_scored,
        report.row_errors,
        report.shed,
        report.deadline_exceeded,
        report.worker_panic,
        report.swap_ok,
        report.swap_failed,
        report.other_errors,
    );
    println!(
        "{{\"record\":\"traffic\",\"clean\":{},\"truncated\":{},\"unparsable\":{},\
         \"unseen\":{},\"non_finite\":{}}}",
        census.clean_rows,
        census.truncated_rows,
        census.unparsable_numerics,
        census.unseen_categories,
        census.non_finite_numerics,
    );
    println!("{}", hist.ndjson_line("client_request"));
    if let Some(stats) = &report.stats_line {
        println!("{stats}");
    }
    eprintln!("{}", census.summary());
    Ok(())
}

/// Reads one complete response line, tolerating read timeouts (partial
/// data persists in the `BufReader`). `Ok(None)` on EOF.
fn read_reply(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
) -> Result<Option<String>, String> {
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                let line = buf.trim().to_string();
                if line.is_empty() {
                    buf.clear();
                    continue;
                }
                return Ok(Some(line));
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if Instant::now() > deadline {
                    return Err("timed out waiting for daemon replies".to_string());
                }
            }
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
}

fn tally(
    line: &str,
    report: &mut RunReport,
    send_times: &Mutex<Vec<Option<Instant>>>,
    hist: &LatencyHistogram,
) {
    let Ok(v) = serde_json::parse(line) else {
        report.other_errors += 1;
        return;
    };
    // client-side latency: match the echoed id back to its send time
    if let Some(Content::Str(id)) = v.get("id") {
        if let Some(k) = id.strip_prefix('r').and_then(|k| k.parse::<usize>().ok()) {
            let mut times = lock(send_times);
            if let Some(t0) = times.get_mut(k).and_then(Option::take) {
                hist.record_ns(t0.elapsed().as_nanos() as u64);
            }
        }
    }
    if v.get("ok") == Some(&Content::Bool(true)) {
        match v.get("reply") {
            Some(Content::Str(r)) if r == "score" => {
                report.score_ok += 1;
                if let Some(Content::U64(n)) = v.get("scored") {
                    report.rows_scored += n;
                }
                if let Some(Content::U64(n)) = v.get("errors") {
                    report.row_errors += n;
                }
            }
            Some(Content::Str(r)) if r == "swap" => report.swap_ok += 1,
            Some(Content::Str(r)) if r == "stats" => report.stats_line = Some(line.to_string()),
            _ => {}
        }
        return;
    }
    match v.get("error") {
        Some(Content::Str(e)) if e == "worker_panic" => report.worker_panic += 1,
        Some(Content::Str(e)) if e == "deadline_exceeded" => report.deadline_exceeded += 1,
        Some(Content::Str(e)) if e == "queue_full" || e == "shed" || e == "shutting_down" => {
            report.shed += 1
        }
        Some(Content::Str(e)) if e == "swap_failed" => report.swap_failed += 1,
        _ => report.other_errors += 1,
    }
}
