//! `pnr-serve` — the fault-tolerant scoring daemon.
//!
//! ```text
//! pnr-serve --model <artifact> [--addr 127.0.0.1:0] [--workers N]
//!           [--queue-capacity N] [--shed reject|drop-oldest]
//!           [--deadline-ms N] [--unknown condition-false|abstain|reject]
//!           [--missing reject|default] [--engine auto|compiled|interpreter]
//!           [--state <path>] [--addr-file <path>] [--enable-fault-injection]
//! ```
//!
//! Binds a TCP listener (port 0 picks a free port), prints
//! `pnr-serve listening on <addr>` on stdout, then serves the NDJSON
//! protocol until a `shutdown` command drains it. With `--state`, the
//! active artifact path is persisted across restarts and a present state
//! file wins over `--model` (kill -9 recovery).
//!
//! Exit codes: 0 after a graceful drain, 1 for data/model failures
//! (artifact unreadable, bind failure), 2 for usage errors.

use pnr_serve::{DaemonConfig, ShedPolicy};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: pnr-serve --model <artifact> [--addr A] [--workers N] \
[--queue-capacity N] [--shed reject|drop-oldest] [--deadline-ms N] \
[--unknown condition-false|abstain|reject] [--missing reject|default] \
[--engine auto|compiled|interpreter] [--state <path>] [--addr-file <path>] \
[--enable-fault-injection]";

fn bail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(pnr_core::exit::USAGE as u8)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut model: Option<PathBuf> = None;
    let mut config = DaemonConfig::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => match args.next() {
                Some(v) => model = Some(PathBuf::from(v)),
                None => return bail("--model needs a path"),
            },
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return bail("--addr needs an address"),
            },
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.workers = n,
                _ => return bail("--workers needs a positive integer"),
            },
            "--queue-capacity" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.queue_capacity = n,
                _ => return bail("--queue-capacity needs a positive integer"),
            },
            "--shed" => match args.next().as_deref().and_then(ShedPolicy::parse) {
                Some(p) => config.shed = p,
                None => return bail("--shed must be `reject` or `drop-oldest`"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => config.default_deadline_ms = Some(n),
                None => return bail("--deadline-ms needs a non-negative integer"),
            },
            "--unknown" => match args
                .next()
                .as_deref()
                .and_then(pnr_core::UnknownPolicy::parse)
            {
                Some(p) => config.unknown = p,
                None => return bail("--unknown must be condition-false, abstain or reject"),
            },
            "--missing" => {
                match args
                    .next()
                    .as_deref()
                    .and_then(pnr_core::MissingColumnPolicy::parse)
                {
                    Some(p) => config.missing = p,
                    None => return bail("--missing must be reject or default"),
                }
            }
            "--engine" => match args
                .next()
                .as_deref()
                .and_then(pnr_core::ScoringEngine::parse)
            {
                Some(e) => config.engine = e,
                None => return bail("--engine must be auto, compiled or interpreter"),
            },
            "--state" => match args.next() {
                Some(v) => config.state_path = Some(PathBuf::from(v)),
                None => return bail("--state needs a path"),
            },
            "--addr-file" => match args.next() {
                Some(v) => config.addr_file = Some(PathBuf::from(v)),
                None => return bail("--addr-file needs a path"),
            },
            "--enable-fault-injection" => config.fault_injection = true,
            other => return bail(&format!("unknown argument {other:?}")),
        }
    }
    let Some(model) = model else {
        return bail("--model is required");
    };
    match pnr_serve::run(&model, config) {
        Ok(code) => ExitCode::from(code as u8),
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(pnr_core::exit::DATA_FAILURE as u8)
        }
    }
}
