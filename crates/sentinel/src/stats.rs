//! Typed parser for the daemon's `stats` reply.
//!
//! The daemon exports one NDJSON object per `stats` request; this module
//! parses it into [`StatsSnapshot`]. Field names and shapes here are the
//! **schema contract** between `pnr-serve` and the sentinel — the tests
//! in this module and in `tests/stats_schema.rs` (serve side) pin them,
//! so a daemon-side rename breaks a test instead of silently breaking
//! drift detection.

use serde::Content;
use std::collections::BTreeMap;

/// Lineage carried by the active artifact (refit candidates name the
/// model they replaced).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineageInfo {
    /// Envelope checksum of the parent artifact.
    pub parent_checksum: String,
    /// Drift window that triggered the refit.
    pub window_id: u64,
    /// Detector verdict recorded at fit time.
    pub verdict: String,
}

/// One entry of the daemon's epoch history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochInfo {
    /// Epoch number (1 is the boot model).
    pub epoch: u64,
    /// Requests served by this epoch.
    pub served: u64,
    /// Artifact path the epoch was loaded from.
    pub source: String,
    /// Artifact envelope checksum.
    pub checksum: String,
}

/// A parsed `stats` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Active model epoch.
    pub epoch: u64,
    /// `"normal"` or `"degraded"`.
    pub mode: String,
    /// Reason string while degraded, `None` otherwise.
    pub degraded_reason: Option<String>,
    /// Envelope checksum of the active artifact.
    pub active_checksum: String,
    /// Lineage of the active artifact, if it carried one.
    pub lineage: Option<LineageInfo>,
    /// Cumulative telemetry counters by name (monotone non-decreasing
    /// across successive snapshots of one daemon).
    pub counters: BTreeMap<String, u64>,
    /// Cumulative score histogram (fixed equal bins over `[0, 1]`).
    pub score_hist: Vec<u64>,
    /// Cumulative P-rule first-match histogram by rule rank.
    pub p_first_bins: Vec<u64>,
    /// Rows no P-rule matched.
    pub p_first_none: u64,
    /// Epoch history, oldest first.
    pub epochs: Vec<EpochInfo>,
    /// Jobs currently queued.
    pub queue_len: u64,
    /// Jobs admitted but not yet answered.
    pub pending: u64,
}

impl StatsSnapshot {
    /// A counter by name (0 when absent — counters only ever grow from 0).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Convenience: is the daemon in degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.mode == "degraded"
    }
}

fn get_u64(map: &Content, key: &str) -> Result<u64, String> {
    match map.get(key) {
        Some(Content::U64(n)) => Ok(*n),
        Some(Content::I64(n)) => u64::try_from(*n).map_err(|_| format!("`{key}` is negative")),
        other => Err(format!("missing or non-integer `{key}`: {other:?}")),
    }
}

fn get_str(map: &Content, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(Content::Str(s)) => Ok(s.clone()),
        other => Err(format!("missing or non-string `{key}`: {other:?}")),
    }
}

fn get_bins(map: &Content, key: &str) -> Result<Vec<u64>, String> {
    map.get(key)
        .and_then(Content::as_seq)
        .ok_or(format!("missing or non-array `{key}`"))?
        .iter()
        .map(|v| match v {
            Content::U64(n) => Ok(*n),
            _ => Err(format!("non-integer bin in `{key}`")),
        })
        .collect()
}

/// Parses one `stats` reply line. `Err` carries the first schema
/// violation found — which is the point: the parser *is* the contract.
pub fn parse_stats(line: &str) -> Result<StatsSnapshot, String> {
    let v = serde_json::parse(line).map_err(|e| format!("unparseable stats reply: {e}"))?;
    if v.get("ok") != Some(&Content::Bool(true)) {
        return Err(format!("not an ok reply: {line}"));
    }
    if v.get("reply") != Some(&Content::Str("stats".to_string())) {
        return Err("reply is not `stats`".to_string());
    }
    let mode = get_str(&v, "mode")?;
    if mode != "normal" && mode != "degraded" {
        return Err(format!("unknown mode {mode:?}"));
    }
    let degraded_reason = match v.get("degraded_reason") {
        Some(Content::Str(s)) => Some(s.clone()),
        Some(Content::Null) | None => None,
        other => return Err(format!("bad `degraded_reason`: {other:?}")),
    };
    let lineage = match v.get("lineage") {
        Some(Content::Null) | None => None,
        Some(lin @ Content::Map(_)) => Some(LineageInfo {
            parent_checksum: get_str(lin, "parent_checksum")?,
            window_id: get_u64(lin, "window_id")?,
            verdict: get_str(lin, "verdict")?,
        }),
        other => return Err(format!("bad `lineage`: {other:?}")),
    };
    let counters_map = v.get("counters").ok_or("missing `counters`")?;
    let counters = match counters_map {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, val)| match val {
                Content::U64(n) => Ok((k.clone(), *n)),
                _ => Err(format!("counter `{k}` is not an integer")),
            })
            .collect::<Result<BTreeMap<String, u64>, String>>()?,
        _ => return Err("`counters` is not an object".to_string()),
    };
    let p_first = v.get("p_first_match").ok_or("missing `p_first_match`")?;
    let epochs = v
        .get("epochs")
        .and_then(Content::as_seq)
        .ok_or("missing or non-array `epochs`")?
        .iter()
        .map(|e| {
            Ok(EpochInfo {
                epoch: get_u64(e, "epoch")?,
                served: get_u64(e, "served")?,
                source: get_str(e, "source")?,
                checksum: get_str(e, "checksum")?,
            })
        })
        .collect::<Result<Vec<EpochInfo>, String>>()?;
    Ok(StatsSnapshot {
        epoch: get_u64(&v, "epoch")?,
        mode,
        degraded_reason,
        active_checksum: get_str(&v, "active_checksum")?,
        lineage,
        counters,
        score_hist: get_bins(&v, "score_hist")?,
        p_first_bins: get_bins(p_first, "bins")?,
        p_first_none: get_u64(p_first, "none")?,
        epochs,
        queue_len: get_u64(&v, "queue_len")?,
        pending: get_u64(&v, "pending")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_line() -> String {
        concat!(
            "{\"ok\":true,\"reply\":\"stats\",\"epoch\":2,",
            "\"mode\":\"degraded\",\"degraded_reason\":\"drift: refits exhausted\",",
            "\"active_checksum\":\"00deadbeef00aa11\",",
            "\"lineage\":{\"parent_checksum\":\"1122334455667788\",",
            "\"window_id\":4,\"verdict\":\"refit\"},",
            "\"queue_len\":1,\"queue_capacity\":64,\"shed_policy\":\"reject\",",
            "\"workers\":4,\"workers_alive\":4,\"worker_respawns\":0,\"pending\":2,",
            "\"counters\":{\"rows_scored\":100,\"decision_positives\":7,",
            "\"rows_quarantined\":3},",
            "\"epochs\":[{\"epoch\":1,\"served\":10,\"source\":\"m.artifact\",",
            "\"checksum\":\"1122334455667788\"},",
            "{\"epoch\":2,\"served\":5,\"source\":\"refit.artifact\",",
            "\"checksum\":\"00deadbeef00aa11\"}],",
            "\"score_hist\":[5,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0,95],",
            "\"p_first_match\":{\"bins\":[90,10],\"none\":0},",
            "\"request_latency\":{\"count\":10,\"p50_ms\":1.0,\"p95_ms\":2.0,",
            "\"p99_ms\":3.0},",
            "\"swap_latency\":{\"count\":1,\"p50_ms\":5.0,\"p95_ms\":5.0,",
            "\"p99_ms\":5.0}}"
        )
        .to_string()
    }

    #[test]
    fn parses_the_full_stats_schema() {
        let s = parse_stats(&sample_line()).unwrap();
        assert_eq!(s.epoch, 2);
        assert!(s.is_degraded());
        assert_eq!(
            s.degraded_reason.as_deref(),
            Some("drift: refits exhausted")
        );
        assert_eq!(s.active_checksum, "00deadbeef00aa11");
        let lin = s.lineage.as_ref().unwrap();
        assert_eq!(lin.parent_checksum, "1122334455667788");
        assert_eq!(lin.window_id, 4);
        assert_eq!(lin.verdict, "refit");
        assert_eq!(s.counter("rows_scored"), 100);
        assert_eq!(s.counter("decision_positives"), 7);
        assert_eq!(s.counter("no_such_counter"), 0);
        assert_eq!(s.score_hist.len(), 20);
        assert_eq!(s.score_hist[19], 95);
        assert_eq!(s.p_first_bins, vec![90, 10]);
        assert_eq!(s.p_first_none, 0);
        assert_eq!(s.epochs.len(), 2);
        assert_eq!(s.epochs[0].checksum, "1122334455667788");
        // the lineage of epoch 2 points at epoch 1's checksum
        assert_eq!(lin.parent_checksum, s.epochs[0].checksum);
    }

    #[test]
    fn normal_mode_has_no_reason_or_lineage() {
        let line = sample_line()
            .replace("\"degraded\"", "\"normal\"")
            .replace("\"drift: refits exhausted\"", "null")
            .replace(
                "{\"parent_checksum\":\"1122334455667788\",\"window_id\":4,\"verdict\":\"refit\"}",
                "null",
            );
        // the replace above turns `"degraded_reason":"..."` into
        // `"degraded_reason":null` only if the quotes line up; rebuild
        // defensively from scratch if parsing fails
        let s = parse_stats(&line).unwrap();
        assert_eq!(s.mode, "normal");
        assert!(!s.is_degraded());
        assert!(s.lineage.is_none());
    }

    #[test]
    fn schema_violations_are_errors_not_defaults() {
        // every load-bearing field, removed or mistyped, must fail loudly
        for (from, to) in [
            ("\"reply\":\"stats\"", "\"reply\":\"score\""),
            ("\"mode\":\"degraded\"", "\"mode\":\"panicking\""),
            (
                "\"active_checksum\":\"00deadbeef00aa11\"",
                "\"active_checksum\":17",
            ),
            ("\"counters\":{", "\"kounters\":{"),
            ("\"score_hist\":[", "\"score_hist\":\"x\",\"old\":["),
            ("\"p_first_match\":{", "\"p_first\":{"),
            ("\"epochs\":[", "\"epochs\":7,\"old\":["),
        ] {
            let line = sample_line().replace(from, to);
            assert!(parse_stats(&line).is_err(), "accepted: {to}");
        }
        assert!(parse_stats("not json").is_err());
        assert!(parse_stats("{\"ok\":false,\"error\":\"x\",\"detail\":\"y\"}").is_err());
    }
}
