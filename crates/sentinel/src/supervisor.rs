//! The refit supervisor: from `Refit` verdict to published model — or an
//! explicit degraded daemon, never a silently worse one.
//!
//! Per attempt the supervisor (re)loads the **last-known-good** artifact,
//! runs [`pnr_core::refit_window`] on the labeled drift window (budgeted,
//! checkpointed fit; held-back validation slice; recall-regression gate),
//! stamps the surviving candidate's lineage — parent checksum as the
//! *daemon* reports it, window id, verdict — saves it, and publishes via
//! the daemon's lineage-checked hot-swap. Every failure class (fit
//! panic, exhausted budget, recall regression, corrupt file, rejected
//! swap) is a counted no-op followed by seeded-jitter backoff; after
//! `max_attempts` the supervisor tells the daemon to enter degraded mode
//! and reports [`RefitOutcome::Degraded`]. The daemon side guarantees
//! the complementary half: a candidate that fails validation there never
//! replaces the serving model.
//!
//! The daemon dependency is the [`ModelPublisher`] trait, so unit tests
//! exercise rollback and degradation against an in-memory fake — no TCP.

use crate::client::{DaemonClient, PublishOutcome};
use crate::detect::DriftVerdict;
use pnr_core::retry::Backoff;
use pnr_core::{
    load_with_retry, ArtifactLineage, FitCheckpointStore, RefitEval, RefitOptions, RetryPolicy,
    ServingModel,
};
use pnr_data::Dataset;
use pnr_telemetry::{Counter, Span, SpanKind, TelemetrySink};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The supervisor's window into the serving daemon. [`DaemonClient`]
/// implements it over TCP; tests implement it in memory.
pub trait ModelPublisher {
    /// Envelope checksum of the model currently serving.
    fn active_checksum(&mut self) -> Result<String, String>;
    /// Offers a candidate artifact; the daemon validates and either
    /// swaps or rejects.
    fn publish(&mut self, path: &Path) -> Result<PublishOutcome, String>;
    /// Switches the daemon's degraded flag.
    fn degrade(&mut self, on: bool, reason: &str) -> Result<(), String>;
}

impl ModelPublisher for DaemonClient {
    fn active_checksum(&mut self) -> Result<String, String> {
        self.stats().map(|s| s.active_checksum)
    }

    fn publish(&mut self, path: &Path) -> Result<PublishOutcome, String> {
        self.swap(path)
    }

    fn degrade(&mut self, on: bool, reason: &str) -> Result<(), String> {
        DaemonClient::degrade(self, on, reason)
    }
}

/// Supervisor knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Refit attempts before declaring the episode lost and degrading.
    pub max_attempts: u32,
    /// Backoff between attempts (jitter from its seed, not wall clock).
    pub backoff: Backoff,
    /// Windowed-refit options (holdout stride, recall tolerance, params).
    pub refit: RefitOptions,
    /// Where candidate artifacts and fit checkpoints are written.
    pub out_dir: PathBuf,
    /// Test hook: deliberately corrupt every saved candidate before
    /// publication. The daemon must reject it and keep last-known-good —
    /// this is how the CI drift-smoke job proves the rollback path.
    pub corrupt_artifacts: bool,
}

impl SupervisorConfig {
    /// A config writing under `out_dir` with defaults everywhere else.
    pub fn new(out_dir: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            max_attempts: 3,
            backoff: Backoff::new(
                3,
                std::time::Duration::from_millis(50),
                std::time::Duration::from_secs(2),
            ),
            refit: RefitOptions::default(),
            out_dir: out_dir.into(),
            corrupt_artifacts: false,
        }
    }
}

/// How a supervised refit episode ended.
#[derive(Debug)]
pub enum RefitOutcome {
    /// A validated candidate is now serving.
    Published {
        /// Path of the published artifact.
        path: PathBuf,
        /// Daemon epoch now serving it.
        epoch: u64,
        /// Checksum of the model it replaced.
        parent_checksum: String,
        /// Validation numbers of the winning candidate.
        eval: RefitEval,
        /// Attempts consumed (1 = first try).
        attempts: u32,
    },
    /// Every attempt failed; the daemon was told to degrade and the
    /// last-known-good model keeps serving.
    Degraded {
        /// Attempts consumed.
        attempts: u32,
        /// The last failure, for the log line.
        last_error: String,
    },
}

/// Flips one byte of the serialized body so the envelope checksum no
/// longer verifies — the candidate becomes exactly the "corrupted refit"
/// the rollback path must survive.
fn corrupt_file(path: &Path) -> Result<(), String> {
    let mut bytes =
        std::fs::read(path).map_err(|e| format!("corrupt hook: read {}: {e}", path.display()))?;
    if let Some(last) = bytes.last_mut() {
        *last ^= 0x01;
    }
    std::fs::write(path, bytes).map_err(|e| format!("corrupt hook: write {}: {e}", path.display()))
}

/// Runs one refit episode for `window_id` over the labeled `window`.
/// Returns `Err` only for environment failures (unreadable baseline,
/// unwritable out dir, lost daemon); refit failures are data, not
/// errors — they come back as [`RefitOutcome::Degraded`].
pub fn supervise_refit(
    window: &Dataset,
    target_class: &str,
    baseline_path: &Path,
    window_id: u64,
    publisher: &mut dyn ModelPublisher,
    config: &SupervisorConfig,
    sink: &Arc<dyn TelemetrySink>,
) -> Result<RefitOutcome, String> {
    std::fs::create_dir_all(&config.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", config.out_dir.display()))?;
    let store = FitCheckpointStore::new(config.out_dir.join("checkpoints"), true);
    let attempts = config.max_attempts.max(1);
    let mut last_error = String::new();
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(config.backoff.delay(attempt - 1));
        }
        sink.add(Counter::RefitAttempts, 1);
        // reload per attempt: last-known-good may have changed, and a
        // prior corrupt candidate must never become the new baseline
        let baseline_artifact = load_with_retry(baseline_path, &RetryPolicy::default())
            .map_err(|e| format!("cannot load baseline {}: {e}", baseline_path.display()))?;
        let baseline = ServingModel::new(baseline_artifact).with_sink(sink.clone());
        let (candidate, eval) = match pnr_core::refit_window(
            window,
            target_class,
            &baseline,
            &config.refit,
            &store,
            sink,
        ) {
            Ok(pair) => pair,
            Err(e) => {
                sink.add(Counter::RefitRollbacks, 1);
                last_error = format!("attempt {}: {e}", attempt + 1);
                eprintln!("refit {last_error}; keeping last-known-good");
                continue;
            }
        };
        let parent_checksum = publisher.active_checksum()?;
        let candidate = candidate.with_lineage(ArtifactLineage {
            parent_checksum: parent_checksum.clone(),
            window_id,
            verdict: DriftVerdict::Refit.name().to_string(),
        });
        let path = config
            .out_dir
            .join(format!("refit-w{window_id}-a{}.artifact", attempt + 1));
        let published = {
            let _span = Span::enter(sink.as_ref(), SpanKind::RefitPublish, "");
            if let Err(e) = candidate.save(&path) {
                sink.add(Counter::RefitRollbacks, 1);
                last_error = format!("attempt {}: save failed: {e}", attempt + 1);
                eprintln!("refit {last_error}");
                continue;
            }
            if config.corrupt_artifacts {
                corrupt_file(&path)?;
            }
            publisher.publish(&path)?
        };
        match published {
            PublishOutcome::Swapped { epoch, .. } => {
                sink.add(Counter::RefitPublishes, 1);
                return Ok(RefitOutcome::Published {
                    path,
                    epoch,
                    parent_checksum,
                    eval,
                    attempts: attempt + 1,
                });
            }
            PublishOutcome::Rejected { kind, detail } => {
                sink.add(Counter::RefitRollbacks, 1);
                last_error = format!(
                    "attempt {}: daemon rejected ({kind}): {detail}",
                    attempt + 1
                );
                eprintln!("refit {last_error}; last-known-good keeps serving");
            }
        }
    }
    publisher.degrade(
        true,
        &format!("drift window {window_id}: {attempts} refit attempt(s) failed; {last_error}"),
    )?;
    Ok(RefitOutcome::Degraded {
        attempts,
        last_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_core::{ModelArtifact, PnruleLearner, PnruleParams};
    use pnr_telemetry::RecordingSink;

    /// In-memory daemon stand-in with scriptable accept/reject.
    struct FakeDaemon {
        checksum: String,
        accept: bool,
        epoch: u64,
        degraded: Option<String>,
        published: Vec<PathBuf>,
    }

    impl FakeDaemon {
        fn new(checksum: &str, accept: bool) -> Self {
            FakeDaemon {
                checksum: checksum.to_string(),
                accept,
                epoch: 1,
                degraded: None,
                published: Vec::new(),
            }
        }
    }

    impl ModelPublisher for FakeDaemon {
        fn active_checksum(&mut self) -> Result<String, String> {
            Ok(self.checksum.clone())
        }

        fn publish(&mut self, path: &Path) -> Result<PublishOutcome, String> {
            // mirror the real daemon: verify the envelope and the lineage
            let artifact = match load_with_retry(path, &RetryPolicy::default()) {
                Ok(a) => a,
                Err(e) => {
                    return Ok(PublishOutcome::Rejected {
                        kind: "swap_failed".to_string(),
                        detail: e.to_string(),
                    })
                }
            };
            if let Some(lin) = &artifact.lineage {
                if lin.parent_checksum != self.checksum {
                    return Ok(PublishOutcome::Rejected {
                        kind: "lineage_mismatch".to_string(),
                        detail: "wrong parent".to_string(),
                    });
                }
            }
            if !self.accept {
                return Ok(PublishOutcome::Rejected {
                    kind: "swap_failed".to_string(),
                    detail: "scripted rejection".to_string(),
                });
            }
            self.epoch += 1;
            self.checksum = artifact.checksum().map_err(|e| format!("checksum: {e}"))?;
            self.published.push(path.to_path_buf());
            self.degraded = None;
            Ok(PublishOutcome::Swapped {
                epoch: self.epoch,
                checksum: self.checksum.clone(),
            })
        }

        fn degrade(&mut self, on: bool, reason: &str) -> Result<(), String> {
            self.degraded = on.then(|| reason.to_string());
            Ok(())
        }
    }

    fn sink() -> Arc<dyn TelemetrySink> {
        Arc::new(RecordingSink::new())
    }

    fn fast_config(dir: &Path) -> SupervisorConfig {
        let mut cfg = SupervisorConfig::new(dir);
        cfg.backoff = Backoff::new(
            3,
            std::time::Duration::from_millis(1),
            std::time::Duration::from_millis(2),
        )
        .with_jitter_seed(7);
        cfg
    }

    fn train_and_save(dir: &Path, rows: usize, seed: u64) -> (PathBuf, String) {
        let data = pnr_kddsim::generate_train(rows, seed);
        let target = data.class_code("dos").expect("dos class");
        let params = PnruleParams::default();
        let (model, report) = PnruleLearner::new(params.clone()).fit_with_report(&data, target);
        let artifact =
            ModelArtifact::new(model, params, report, data.schema().clone()).expect("artifact");
        let checksum = artifact.checksum().expect("checksum");
        let path = dir.join("baseline.artifact");
        artifact.save(&path).expect("save baseline");
        (path, checksum)
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pnr-sentinel-sup-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn successful_refit_publishes_with_parent_lineage() {
        let dir = tmp_dir("ok");
        let (baseline, checksum) = train_and_save(&dir, 1500, 11);
        let mut daemon = FakeDaemon::new(&checksum, true);
        let window = pnr_kddsim::generate_test(2000, 12);
        let s = sink();
        let outcome = supervise_refit(
            &window,
            "dos",
            &baseline,
            5,
            &mut daemon,
            &fast_config(&dir),
            &s,
        )
        .expect("environment ok");
        match outcome {
            RefitOutcome::Published {
                parent_checksum,
                attempts,
                path,
                ..
            } => {
                assert_eq!(parent_checksum, checksum);
                assert_eq!(attempts, 1);
                // the artifact on disk carries the stamped lineage
                let saved = load_with_retry(&path, &RetryPolicy::default()).expect("load");
                let lin = saved.lineage.expect("lineage stamped");
                assert_eq!(lin.parent_checksum, checksum);
                assert_eq!(lin.window_id, 5);
                assert_eq!(lin.verdict, "refit");
            }
            other => panic!("expected Published, got {other:?}"),
        }
        assert!(daemon.degraded.is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_candidates_never_replace_last_known_good() {
        let dir = tmp_dir("corrupt");
        let (baseline, checksum) = train_and_save(&dir, 1500, 13);
        let mut daemon = FakeDaemon::new(&checksum, true);
        let window = pnr_kddsim::generate_test(2000, 14);
        let recording = Arc::new(RecordingSink::new());
        let s: Arc<dyn TelemetrySink> = recording.clone();
        let mut cfg = fast_config(&dir);
        cfg.corrupt_artifacts = true;
        let outcome =
            supervise_refit(&window, "dos", &baseline, 6, &mut daemon, &cfg, &s).expect("env ok");
        match outcome {
            RefitOutcome::Degraded {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, 3);
                assert!(last_error.contains("swap_failed"), "{last_error}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        // last-known-good untouched, degradation explicit, rollbacks counted
        assert_eq!(daemon.checksum, checksum);
        assert!(daemon.published.is_empty());
        assert!(daemon
            .degraded
            .as_deref()
            .unwrap_or("")
            .contains("window 6"));
        assert_eq!(recording.value(Counter::RefitRollbacks), 3);
        assert_eq!(recording.value(Counter::RefitPublishes), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_parent_is_a_lineage_rejection() {
        let dir = tmp_dir("lineage");
        let (baseline, _checksum) = train_and_save(&dir, 1500, 15);
        // daemon reports a different active checksum than the lineage
        // the supervisor will stamp? No: the supervisor stamps what the
        // publisher reports, so simulate the race by lying once
        struct LyingDaemon {
            inner: FakeDaemon,
        }
        impl ModelPublisher for LyingDaemon {
            fn active_checksum(&mut self) -> Result<String, String> {
                Ok("0000000000000000".to_string()) // stale/raced value
            }
            fn publish(&mut self, path: &Path) -> Result<PublishOutcome, String> {
                self.inner.publish(path)
            }
            fn degrade(&mut self, on: bool, reason: &str) -> Result<(), String> {
                self.inner.degrade(on, reason)
            }
        }
        let (_, real_checksum) = train_and_save(&dir, 1500, 15);
        let mut daemon = LyingDaemon {
            inner: FakeDaemon::new(&real_checksum, true),
        };
        let window = pnr_kddsim::generate_test(2000, 16);
        let s = sink();
        let outcome = supervise_refit(
            &window,
            "dos",
            &baseline,
            7,
            &mut daemon,
            &fast_config(&dir),
            &s,
        )
        .expect("env ok");
        match outcome {
            RefitOutcome::Degraded { last_error, .. } => {
                assert!(last_error.contains("lineage_mismatch"), "{last_error}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(daemon.inner.checksum, real_checksum, "LKG survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn too_thin_window_degrades_without_publishing() {
        let dir = tmp_dir("thin");
        let (baseline, checksum) = train_and_save(&dir, 1500, 17);
        let mut daemon = FakeDaemon::new(&checksum, true);
        // 50 rows cannot hold min_target_rows target rows after holdout
        let window = pnr_kddsim::generate_train(50, 18);
        let s = sink();
        let mut cfg = fast_config(&dir);
        cfg.refit.min_target_rows = 200;
        let outcome =
            supervise_refit(&window, "dos", &baseline, 8, &mut daemon, &cfg, &s).expect("env ok");
        assert!(matches!(outcome, RefitOutcome::Degraded { .. }));
        assert!(daemon.published.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
