//! NDJSON-over-TCP control client for the daemon.
//!
//! One lockstep request/reply per call — the sentinel is a control
//! plane, not a load generator, so simplicity beats pipelining. Connects
//! (and reconnects) under the shared [`pnr_core::retry`] bounded backoff
//! with seeded jitter, so a daemon that is still binding its port or
//! briefly restarting does not kill the monitor.

use crate::stats::{parse_stats, StatsSnapshot};
use pnr_core::retry::{self, Backoff, RetryError};
use serde::Content;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::time::Duration;

/// Reply to a publish (`swap`) attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishOutcome {
    /// The daemon swapped to the candidate.
    Swapped {
        /// New active epoch.
        epoch: u64,
        /// Candidate's envelope checksum as the daemon computed it.
        checksum: String,
    },
    /// The daemon rejected the candidate; the old model keeps serving.
    Rejected {
        /// Typed error kind (`swap_failed`, `lineage_mismatch`, ...).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
}

/// A connected control client.
#[derive(Debug)]
pub struct DaemonClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl DaemonClient {
    /// Connects with bounded, seeded-jitter retry: every refused or
    /// timed-out attempt backs off per `backoff` until exhaustion.
    pub fn connect(addr: &str, backoff: &Backoff) -> Result<DaemonClient, String> {
        let stream = retry::run(
            backoff,
            |_e: &String| true,
            |_attempt| TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}")),
        )
        .map_err(|e| match e {
            RetryError::Fatal(msg) => msg,
            RetryError::Exhausted { attempts, last } => {
                format!("gave up connecting after {attempts} attempt(s): {last}")
            }
        })?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| format!("cannot set read timeout: {e}"))?;
        let writer = stream
            .try_clone()
            .map_err(|e| format!("cannot clone stream: {e}"))?;
        Ok(DaemonClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one line, reads one reply line.
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("write failed: {e}"))?;
        let mut buf = String::new();
        loop {
            match self.reader.read_line(&mut buf) {
                Ok(0) => return Err("daemon closed the connection".to_string()),
                Ok(_) => {
                    let reply = buf.trim().to_string();
                    if reply.is_empty() {
                        buf.clear();
                        continue;
                    }
                    return Ok(reply);
                }
                Err(e) => return Err(format!("read failed: {e}")),
            }
        }
    }

    /// Fetches and parses a stats snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot, String> {
        let reply = self.roundtrip("{\"cmd\":\"stats\"}")?;
        parse_stats(&reply)
    }

    /// Asks the daemon to hot-swap to the artifact at `path`. A rejected
    /// swap is an `Ok(Rejected {..})` — the request worked, the daemon
    /// said no — while transport failures are `Err`.
    pub fn swap(&mut self, path: &Path) -> Result<PublishOutcome, String> {
        let line = crate::render_cmd(vec![
            ("cmd", Content::Str("swap".to_string())),
            ("path", Content::Str(path.display().to_string())),
        ]);
        let reply = self.roundtrip(&line)?;
        let v = serde_json::parse(&reply).map_err(|e| format!("bad swap reply: {e}"))?;
        if v.get("ok") == Some(&Content::Bool(true)) {
            let epoch = match v.get("epoch") {
                Some(Content::U64(n)) => *n,
                _ => return Err(format!("swap reply lacks `epoch`: {reply}")),
            };
            let checksum = match v.get("checksum") {
                Some(Content::Str(s)) => s.clone(),
                _ => return Err(format!("swap reply lacks `checksum`: {reply}")),
            };
            Ok(PublishOutcome::Swapped { epoch, checksum })
        } else {
            let field = |k: &str| match v.get(k) {
                Some(Content::Str(s)) => s.clone(),
                _ => String::new(),
            };
            Ok(PublishOutcome::Rejected {
                kind: field("error"),
                detail: field("detail"),
            })
        }
    }

    /// Sets or clears the daemon's degraded mode.
    pub fn degrade(&mut self, on: bool, reason: &str) -> Result<(), String> {
        let line = crate::render_cmd(vec![
            ("cmd", Content::Str("degrade".to_string())),
            ("on", Content::Bool(on)),
            ("reason", Content::Str(reason.to_string())),
        ]);
        let reply = self.roundtrip(&line)?;
        let v = serde_json::parse(&reply).map_err(|e| format!("bad degrade reply: {e}"))?;
        if v.get("ok") == Some(&Content::Bool(true)) {
            Ok(())
        } else {
            Err(format!("degrade rejected: {reply}"))
        }
    }

    /// Asks the daemon to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip("{\"cmd\":\"shutdown\"}").map(|_| ())
    }
}
