//! `pnr-sentinel` — drift monitor + refit supervisor for `pnr-serve`.
//!
//! ```text
//! pnr-sentinel --model <artifact> (--addr <host:port> | --addr-file <path>)
//!              [--target-class dos] [--poll-ms 500] [--max-polls 60]
//!              [--window-rows 2000] [--seed 7]
//!              [--schedule step:K|ramp:S:E|recur:P|none]
//!              [--out-dir .] [--max-attempts 3] [--recall-tolerance 0.05]
//!              [--min-window-rows 50] [--corrupt-artifacts]
//! ```
//!
//! Polls the daemon's `stats` every `--poll-ms`, differences successive
//! snapshots into per-window rates, and runs the drift detector. On a
//! `refit` verdict it draws a labeled refit window from the same
//! deterministic [`DriftStream`](pnr_kddsim::DriftStream) the load
//! generator replays (`--seed`/`--schedule` must match), advanced to the
//! daemon's current row position, and hands it to the refit supervisor:
//! budgeted checkpointed fit, held-back validation, lineage stamp,
//! hot-swap publish with bounded seeded-jitter retry, degraded-mode
//! fallback after `--max-attempts` failures.
//!
//! `--corrupt-artifacts` deliberately corrupts every candidate before
//! publication — the CI rollback drill: the daemon must reject each one
//! and keep serving last-known-good.
//!
//! Emits NDJSON on stdout: one `{"record":"drift",...}` per poll and one
//! `{"record":"refit",...}` per refit episode.
//!
//! Exit codes: 0 on a completed watch, 1 for environment failures,
//! 2 for usage errors.

use pnr_core::retry::Backoff;
use pnr_sentinel::{
    supervise_refit, DaemonClient, DetectorConfig, DriftDetector, DriftVerdict, RefitOutcome,
    SupervisorConfig, WindowDelta,
};
use pnr_telemetry::{RecordingSink, TelemetrySink};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "usage: pnr-sentinel --model <artifact> \
(--addr <host:port> | --addr-file <path>) [--target-class C] [--poll-ms N] \
[--max-polls N] [--window-rows N] [--seed N] \
[--schedule step:K|ramp:S:E|recur:P|none] [--out-dir D] [--max-attempts N] \
[--recall-tolerance p] [--min-window-rows N] [--corrupt-artifacts]";

fn bail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(pnr_core::exit::USAGE as u8)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::from(pnr_core::exit::DATA_FAILURE as u8)
}

struct Options {
    model: Option<PathBuf>,
    addr: Option<String>,
    addr_file: Option<PathBuf>,
    target_class: String,
    poll_ms: u64,
    max_polls: u32,
    window_rows: usize,
    seed: u64,
    schedule: Option<pnr_kddsim::DriftSchedule>,
    out_dir: PathBuf,
    max_attempts: u32,
    recall_tolerance: f64,
    min_window_rows: u64,
    corrupt_artifacts: bool,
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut o = Options {
        model: None,
        addr: None,
        addr_file: None,
        target_class: "dos".to_string(),
        poll_ms: 500,
        max_polls: 60,
        window_rows: 2_000,
        seed: 7,
        schedule: None,
        out_dir: PathBuf::from("."),
        max_attempts: 3,
        recall_tolerance: 0.05,
        min_window_rows: 50,
        corrupt_artifacts: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--model" => match args.next() {
                Some(v) => o.model = Some(PathBuf::from(v)),
                None => return Err("--model needs a path".to_string()),
            },
            "--addr" => match args.next() {
                Some(v) => o.addr = Some(v),
                None => return Err("--addr needs host:port".to_string()),
            },
            "--addr-file" => match args.next() {
                Some(v) => o.addr_file = Some(PathBuf::from(v)),
                None => return Err("--addr-file needs a path".to_string()),
            },
            "--target-class" => match args.next() {
                Some(v) => o.target_class = v,
                None => return Err("--target-class needs a class name".to_string()),
            },
            "--poll-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => o.poll_ms = n,
                _ => return Err("--poll-ms needs a positive integer".to_string()),
            },
            "--max-polls" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => o.max_polls = n,
                _ => return Err("--max-polls needs a positive integer".to_string()),
            },
            "--window-rows" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => o.window_rows = n,
                _ => return Err("--window-rows needs a positive integer".to_string()),
            },
            "--seed" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => o.seed = n,
                None => return Err("--seed needs an integer".to_string()),
            },
            "--schedule" => match args
                .next()
                .as_deref()
                .and_then(pnr_kddsim::DriftSchedule::parse)
            {
                Some(s) => o.schedule = Some(s),
                None => {
                    return Err("--schedule must be step:K, ramp:S:E, recur:P or none".to_string())
                }
            },
            "--out-dir" => match args.next() {
                Some(v) => o.out_dir = PathBuf::from(v),
                None => return Err("--out-dir needs a directory".to_string()),
            },
            "--max-attempts" => match args.next().and_then(|v| v.parse::<u32>().ok()) {
                Some(n) if n > 0 => o.max_attempts = n,
                _ => return Err("--max-attempts needs a positive integer".to_string()),
            },
            "--recall-tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(p) if (0.0..=1.0).contains(&p) => o.recall_tolerance = p,
                _ => return Err("--recall-tolerance needs a number in [0,1]".to_string()),
            },
            "--min-window-rows" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => o.min_window_rows = n,
                None => return Err("--min-window-rows needs an integer".to_string()),
            },
            "--corrupt-artifacts" => o.corrupt_artifacts = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if o.model.is_none() {
        return Err("--model is required".to_string());
    }
    if o.addr.is_none() && o.addr_file.is_none() {
        return Err("one of --addr or --addr-file is required".to_string());
    }
    Ok(o)
}

/// Resolves the daemon address, waiting (bounded) for an addr file the
/// daemon has not written yet.
fn resolve_addr(o: &Options) -> Result<String, String> {
    if let Some(addr) = &o.addr {
        return Ok(addr.clone());
    }
    let path = o.addr_file.as_ref().ok_or("no address source")?;
    for _ in 0..100 {
        match std::fs::read_to_string(path) {
            Ok(s) if !s.trim().is_empty() => return Ok(s.trim().to_string()),
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
    Err(format!("addr file {} never appeared", path.display()))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(e) => return bail(&e),
    };
    match watch(&opts) {
        Ok(()) => ExitCode::from(pnr_core::exit::OK as u8),
        Err(e) => fail(&e),
    }
}

fn watch(opts: &Options) -> Result<(), String> {
    let model = opts.model.as_ref().ok_or("--model is required")?;
    let addr = resolve_addr(opts)?;
    let backoff = Backoff::new(10, Duration::from_millis(100), Duration::from_secs(2))
        .with_jitter_seed(opts.seed);
    let mut client = DaemonClient::connect(&addr, &backoff)?;
    let sink: Arc<dyn TelemetrySink> = Arc::new(RecordingSink::new());
    let mut detector = DriftDetector::new(DetectorConfig {
        min_window_rows: opts.min_window_rows,
        ..DetectorConfig::default()
    });
    let mut sup_config = SupervisorConfig::new(&opts.out_dir);
    sup_config.max_attempts = opts.max_attempts;
    sup_config.backoff = Backoff::new(
        opts.max_attempts,
        Duration::from_millis(100),
        Duration::from_secs(2),
    )
    .with_jitter_seed(opts.seed ^ 0x5e47_14e1);
    sup_config.refit.recall_tolerance = opts.recall_tolerance;
    sup_config.corrupt_artifacts = opts.corrupt_artifacts;

    // the labeled window source: same seed + schedule as the loadgen's
    // traffic stream, so window rows mirror what the daemon is seeing
    let schedule = opts
        .schedule
        .clone()
        .unwrap_or(pnr_kddsim::DriftSchedule::Constant(pnr_kddsim::train_mix()));
    let mut stream = pnr_kddsim::DriftStream::new(opts.seed, schedule);

    let mut lkg = model.clone();
    let mut previous = client.stats()?;
    let mut window_id = 0u64;
    for poll in 0..opts.max_polls {
        std::thread::sleep(Duration::from_millis(opts.poll_ms));
        let snapshot = client.stats()?;
        let delta = WindowDelta::between(&previous, &snapshot);
        let verdict = detector.observe(&delta, &sink);
        println!(
            "{{\"record\":\"drift\",\"poll\":{poll},\"rows\":{},\"positive_rate\":{:.4},\
             \"quarantine_rate\":{:.4},\"verdict\":\"{}\",\"mode\":\"{}\"}}",
            delta.rows,
            delta.positive_rate(),
            delta.quarantine_rate(),
            verdict.name(),
            snapshot.mode,
        );
        previous = snapshot;
        if verdict != DriftVerdict::Refit {
            continue;
        }
        window_id += 1;
        // march the stream up to the daemon's position so the refit
        // window reflects post-shift traffic, then draw the window
        let served = usize::try_from(previous.counter("rows_scored")).unwrap_or(usize::MAX);
        if served > stream.position() + opts.window_rows {
            stream.skip(served - stream.position() - opts.window_rows);
        }
        let window = stream.next_chunk(opts.window_rows);
        let outcome = supervise_refit(
            &window,
            &opts.target_class,
            &lkg,
            window_id,
            &mut client,
            &sup_config,
            &sink,
        )?;
        match outcome {
            RefitOutcome::Published {
                path,
                epoch,
                parent_checksum,
                eval,
                attempts,
            } => {
                println!(
                    "{{\"record\":\"refit\",\"outcome\":\"published\",\"window_id\":{window_id},\
                     \"parent_checksum\":\"{parent_checksum}\",\"epoch\":{epoch},\
                     \"attempts\":{attempts},\"candidate_recall\":{:.4},\
                     \"baseline_recall\":{:.4},\"path\":\"{}\"}}",
                    eval.candidate_recall,
                    eval.baseline_recall,
                    path.display(),
                );
                lkg = path;
            }
            RefitOutcome::Degraded {
                attempts,
                last_error,
            } => {
                println!(
                    "{{\"record\":\"refit\",\"outcome\":\"degraded\",\"window_id\":{window_id},\
                     \"attempts\":{attempts},\"last_error\":{}}}",
                    serde_json::to_string(&serde::Content::Str(last_error))
                        .unwrap_or_else(|_| "\"?\"".to_string()),
                );
            }
        }
    }
    Ok(())
}
