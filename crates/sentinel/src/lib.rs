//! `pnr-sentinel` — drift monitoring and refit supervision for the
//! scoring daemon.
//!
//! The sentinel closes the serving loop the paper's KDD experiment
//! leaves open: the test distribution *shifts* (probe 0.83% → 1.34%,
//! r2l 0.23% → 5.2%, with novel subclasses), and a model fitted on the
//! old mix silently decays. This crate watches a running `pnr-serve`
//! daemon through its own `stats` protocol and reacts in three stages:
//!
//! 1. **Detect** ([`detect`]): successive stats snapshots are differenced
//!    into per-window rates (positive-decision rate, quarantine rate,
//!    score-mass distribution) and fed to Page-Hinkley and windowed-rate
//!    tests with deterministic thresholds. The result is a typed
//!    [`DriftVerdict`]: `None`, `Warn`, or `Refit`.
//! 2. **Refit** ([`supervisor`]): on `Refit`, a windowed refit runs
//!    through [`pnr_core::refit_window`] — checkpointed fit under a
//!    budget, held-back validation slice, recall-regression gate — with
//!    bounded, jitter-seeded retry. Only a candidate that validated is
//!    published, via the daemon's lineage-checked hot-swap; its artifact
//!    envelope records the parent checksum, window id and verdict. A
//!    failed, panicking or regressing refit is a logged no-op: the
//!    daemon keeps serving the **last known good** model.
//! 3. **Degrade**: when every attempt failed, the sentinel tells the
//!    daemon to enter explicit degraded mode, which the daemon surfaces
//!    in `stats` (`"mode":"degraded"`) and in every response envelope
//!    (`"degraded":true`) until a later swap succeeds.
//!
//! [`stats`] is the typed parser for the daemon's stats reply and doubles
//! as the schema contract test for that wire format; [`client`] is the
//! NDJSON-over-TCP control client with seeded-backoff reconnects.

pub mod client;
pub mod detect;
pub mod stats;
pub mod supervisor;

pub use client::{DaemonClient, PublishOutcome};
pub use detect::{DetectorConfig, DriftDetector, DriftVerdict, WindowDelta};
pub use stats::{EpochInfo, LineageInfo, StatsSnapshot};
pub use supervisor::{supervise_refit, ModelPublisher, RefitOutcome, SupervisorConfig};

/// Renders one NDJSON command line from key/value entries. A content
/// tree always serializes; the fallback keeps this infallible without a
/// panic path.
pub(crate) fn render_cmd(entries: Vec<(&str, serde::Content)>) -> String {
    let map = serde::Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    );
    serde_json::to_string(&map).unwrap_or_else(|_| "{}".to_string())
}
