//! Drift detection over per-window serving statistics.
//!
//! The daemon's counters and histograms are **cumulative**; the detector
//! differences successive [`StatsSnapshot`]s into a [`WindowDelta`] and
//! watches three derived rates:
//!
//! * the **positive-decision rate** `decision_positives / rows_scored`,
//!   through a two-sided **Page-Hinkley** test — the workhorse change
//!   detector: cheap, exact-arithmetic, and sensitive to sustained small
//!   shifts rather than single noisy windows;
//! * the **quarantine rate** `rows_quarantined / rows` through a
//!   **windowed-rate** test against the warmup baseline — schema-shaped
//!   drift (novel categories, missing fields) shows up here first;
//! * the **score mass** through the score histogram's mean shift —
//!   distributional drift that hasn't (yet) flipped decisions.
//!
//! All thresholds live in [`DetectorConfig`] and every decision is a
//! pure function of the observed sequence — two detectors fed the same
//! snapshots return the same verdicts, which is what the repro harness
//! asserts. The Page-Hinkley state is reset after a `Refit` verdict so
//! one drift episode does not keep re-triggering while a refit is
//! already under way.

use crate::stats::StatsSnapshot;
use pnr_telemetry::{Counter, TelemetrySink};
use std::sync::Arc;

/// The detector's verdict for one window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftVerdict {
    /// Nothing notable.
    None,
    /// Sustained deviation; worth logging, not yet worth a refit.
    Warn,
    /// Critical drift: trigger the refit supervisor.
    Refit,
}

impl DriftVerdict {
    /// Stable lowercase name for logs and artifact lineage.
    pub fn name(self) -> &'static str {
        match self {
            DriftVerdict::None => "none",
            DriftVerdict::Warn => "warn",
            DriftVerdict::Refit => "refit",
        }
    }
}

/// Per-window rates differenced from two successive snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowDelta {
    /// Rows scored in the window.
    pub rows: u64,
    /// Positive decisions in the window.
    pub positives: u64,
    /// Rows quarantined in the window.
    pub quarantined: u64,
    /// Mean of the score distribution over the window's score-histogram
    /// mass (bin midpoints), or `None` with no scored mass.
    pub score_mean: Option<f64>,
}

impl WindowDelta {
    /// Differences `later - earlier`. Counter regressions (a restarted
    /// daemon) saturate to zero rather than wrapping.
    pub fn between(earlier: &StatsSnapshot, later: &StatsSnapshot) -> WindowDelta {
        let d = |name: &str| later.counter(name).saturating_sub(earlier.counter(name));
        let rows = d("rows_scored");
        let mut mass = 0u64;
        let mut weighted = 0.0f64;
        let n_bins = later.score_hist.len();
        for (i, (&l, &e)) in later
            .score_hist
            .iter()
            .zip(earlier.score_hist.iter().chain(std::iter::repeat(&0)))
            .enumerate()
        {
            let c = l.saturating_sub(e);
            mass += c;
            if n_bins > 0 {
                let mid = (0.5 + i as f64) / n_bins as f64;
                weighted += mid * c as f64;
            }
        }
        WindowDelta {
            rows,
            positives: d("decision_positives"),
            quarantined: d("rows_quarantined"),
            score_mean: if mass > 0 {
                Some(weighted / mass as f64)
            } else {
                None
            },
        }
    }

    /// Positive-decision rate over scored rows (0 with no rows).
    pub fn positive_rate(&self) -> f64 {
        if self.rows == 0 {
            0.0
        } else {
            self.positives as f64 / self.rows as f64
        }
    }

    /// Quarantine rate over attempted rows (0 with no rows).
    pub fn quarantine_rate(&self) -> f64 {
        let attempted = self.rows + self.quarantined;
        if attempted == 0 {
            0.0
        } else {
            self.quarantined as f64 / attempted as f64
        }
    }
}

/// Thresholds and shape of the detector. All fields are plain numbers:
/// determinism comes from the arithmetic, reproducibility from recording
/// the config next to the verdicts.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Windows observed before any verdict other than `None` (the
    /// baseline mean settles during warmup).
    pub warmup_windows: u32,
    /// Windows thinner than this are skipped entirely (rates over a
    /// handful of rows are noise).
    pub min_window_rows: u64,
    /// Page-Hinkley tolerated drift `δ` on the positive rate.
    pub ph_delta: f64,
    /// Page-Hinkley statistic level raising `Warn`.
    pub ph_lambda_warn: f64,
    /// Page-Hinkley statistic level raising `Refit`.
    pub ph_lambda_refit: f64,
    /// Absolute quarantine-rate increase over baseline raising `Warn`.
    pub quarantine_warn: f64,
    /// Absolute quarantine-rate increase over baseline raising `Refit`.
    pub quarantine_refit: f64,
    /// Absolute score-mean shift from baseline raising `Warn`.
    pub score_mean_warn: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            warmup_windows: 3,
            min_window_rows: 50,
            ph_delta: 0.005,
            ph_lambda_warn: 0.05,
            ph_lambda_refit: 0.12,
            quarantine_warn: 0.05,
            quarantine_refit: 0.20,
            score_mean_warn: 0.10,
        }
    }
}

/// Two-sided Page-Hinkley state on one rate.
#[derive(Debug, Clone, Default)]
struct PageHinkley {
    n: u64,
    mean: f64,
    m_up: f64,
    m_up_min: f64,
    m_down: f64,
    m_down_min: f64,
}

impl PageHinkley {
    /// Feeds one observation; returns the current statistic (max of the
    /// upward and downward branches).
    fn observe(&mut self, x: f64, delta: f64) -> f64 {
        self.n += 1;
        self.mean += (x - self.mean) / self.n as f64;
        self.m_up += x - self.mean - delta;
        self.m_up_min = self.m_up_min.min(self.m_up);
        self.m_down += self.mean - x - delta;
        self.m_down_min = self.m_down_min.min(self.m_down);
        (self.m_up - self.m_up_min).max(self.m_down - self.m_down_min)
    }

    fn reset(&mut self) {
        *self = PageHinkley::default();
    }
}

/// The drift detector: feed it [`WindowDelta`]s, read back verdicts.
#[derive(Debug)]
pub struct DriftDetector {
    config: DetectorConfig,
    ph: PageHinkley,
    windows_seen: u32,
    /// Warmup means, fixed once `windows_seen == warmup_windows`.
    baseline_quarantine: f64,
    baseline_score_mean: Option<f64>,
    warmup_quarantine_sum: f64,
    warmup_score_sum: f64,
    warmup_score_n: u32,
}

impl DriftDetector {
    /// A detector with the given thresholds.
    pub fn new(config: DetectorConfig) -> Self {
        DriftDetector {
            config,
            ph: PageHinkley::default(),
            windows_seen: 0,
            baseline_quarantine: 0.0,
            baseline_score_mean: None,
            warmup_quarantine_sum: 0.0,
            warmup_score_sum: 0.0,
            warmup_score_n: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Completed (non-skipped) windows observed so far.
    pub fn windows_seen(&self) -> u32 {
        self.windows_seen
    }

    /// Observes one window and returns the verdict. `sink` receives the
    /// `drift_checks` / `drift_warnings` / `drift_refits_signalled`
    /// counters.
    pub fn observe(&mut self, delta: &WindowDelta, sink: &Arc<dyn TelemetrySink>) -> DriftVerdict {
        sink.add(Counter::DriftChecks, 1);
        if delta.rows + delta.quarantined < self.config.min_window_rows {
            return DriftVerdict::None;
        }
        self.windows_seen += 1;
        let ph_stat = self.ph.observe(delta.positive_rate(), self.config.ph_delta);
        if self.windows_seen <= self.config.warmup_windows {
            self.warmup_quarantine_sum += delta.quarantine_rate();
            if let Some(m) = delta.score_mean {
                self.warmup_score_sum += m;
                self.warmup_score_n += 1;
            }
            if self.windows_seen == self.config.warmup_windows {
                self.baseline_quarantine =
                    self.warmup_quarantine_sum / self.config.warmup_windows as f64;
                if self.warmup_score_n > 0 {
                    self.baseline_score_mean =
                        Some(self.warmup_score_sum / self.warmup_score_n as f64);
                }
            }
            return DriftVerdict::None;
        }
        let quarantine_excess = delta.quarantine_rate() - self.baseline_quarantine;
        let score_shift = match (delta.score_mean, self.baseline_score_mean) {
            (Some(now), Some(base)) => (now - base).abs(),
            _ => 0.0,
        };
        let verdict = if ph_stat >= self.config.ph_lambda_refit
            || quarantine_excess >= self.config.quarantine_refit
        {
            DriftVerdict::Refit
        } else if ph_stat >= self.config.ph_lambda_warn
            || quarantine_excess >= self.config.quarantine_warn
            || score_shift >= self.config.score_mean_warn
        {
            DriftVerdict::Warn
        } else {
            DriftVerdict::None
        };
        match verdict {
            DriftVerdict::Warn => sink.add(Counter::DriftWarnings, 1),
            DriftVerdict::Refit => {
                sink.add(Counter::DriftRefitsSignalled, 1);
                // one episode, one refit signal: start a fresh test so a
                // successful (or failed) refit is judged on new evidence
                self.ph.reset();
            }
            DriftVerdict::None => {}
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_telemetry::RecordingSink;

    fn sink() -> Arc<dyn TelemetrySink> {
        Arc::new(RecordingSink::new())
    }

    fn delta(rows: u64, positives: u64, quarantined: u64) -> WindowDelta {
        WindowDelta {
            rows,
            positives,
            quarantined,
            score_mean: None,
        }
    }

    #[test]
    fn stable_rate_never_alarms() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        let s = sink();
        for _ in 0..200 {
            assert_eq!(d.observe(&delta(1000, 100, 0), &s), DriftVerdict::None);
        }
    }

    #[test]
    fn step_change_in_positive_rate_escalates_to_refit() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        let s = sink();
        for _ in 0..10 {
            assert_eq!(d.observe(&delta(1000, 100, 0), &s), DriftVerdict::None);
        }
        // the positive rate triples: r2l-style drift the dos model flags
        let mut saw_warn = false;
        let mut refit_at = None;
        for i in 0..20 {
            match d.observe(&delta(1000, 300, 0), &s) {
                DriftVerdict::Warn => saw_warn = true,
                DriftVerdict::Refit => {
                    refit_at = Some(i);
                    break;
                }
                DriftVerdict::None => {}
            }
        }
        let lag = refit_at.expect("a 3x rate step must reach Refit");
        assert!(saw_warn || lag == 0, "warn precedes refit unless immediate");
        assert!(lag <= 3, "detection lag {lag} too high for a 3x step");
    }

    #[test]
    fn downward_drift_is_detected_too() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        let s = sink();
        for _ in 0..10 {
            d.observe(&delta(1000, 300, 0), &s);
        }
        let refit = (0..20).any(|_| d.observe(&delta(1000, 30, 0), &s) == DriftVerdict::Refit);
        assert!(refit, "a 10x rate drop must reach Refit");
    }

    #[test]
    fn quarantine_burst_is_critical() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        let s = sink();
        for _ in 0..5 {
            assert_eq!(d.observe(&delta(1000, 100, 2), &s), DriftVerdict::None);
        }
        // a quarter of traffic quarantined: schema-shaped drift
        assert_eq!(d.observe(&delta(750, 75, 250), &s), DriftVerdict::Refit);
    }

    #[test]
    fn thin_windows_are_skipped_not_judged() {
        let mut d = DriftDetector::new(DetectorConfig::default());
        let s = sink();
        for _ in 0..100 {
            assert_eq!(d.observe(&delta(10, 10, 0), &s), DriftVerdict::None);
        }
        assert_eq!(d.windows_seen(), 0, "thin windows never count");
    }

    #[test]
    fn detection_is_deterministic() {
        let run = || {
            let mut d = DriftDetector::new(DetectorConfig::default());
            let s = sink();
            let mut verdicts = Vec::new();
            for i in 0..30u64 {
                let positives = if i < 10 { 100 } else { 100 + i * 20 };
                verdicts.push(d.observe(&delta(1000, positives, i % 3), &s));
            }
            verdicts
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_tick_per_verdict() {
        let counting = Arc::new(RecordingSink::new());
        let s: Arc<dyn TelemetrySink> = counting.clone();
        let mut d = DriftDetector::new(DetectorConfig::default());
        for _ in 0..10 {
            d.observe(&delta(1000, 100, 0), &s);
        }
        for _ in 0..20 {
            if d.observe(&delta(1000, 400, 0), &s) == DriftVerdict::Refit {
                break;
            }
        }
        assert!(counting.value(Counter::DriftChecks) >= 11);
        assert_eq!(counting.value(Counter::DriftRefitsSignalled), 1);
    }

    #[test]
    fn deltas_difference_snapshots_and_saturate_on_restart() {
        use crate::stats::StatsSnapshot;
        use std::collections::BTreeMap;
        let snap = |rows: u64, pos: u64, hist: Vec<u64>| StatsSnapshot {
            epoch: 1,
            mode: "normal".to_string(),
            degraded_reason: None,
            active_checksum: "c".to_string(),
            lineage: None,
            counters: BTreeMap::from([
                ("rows_scored".to_string(), rows),
                ("decision_positives".to_string(), pos),
            ]),
            score_hist: hist,
            p_first_bins: vec![],
            p_first_none: 0,
            epochs: vec![],
            queue_len: 0,
            pending: 0,
        };
        let a = snap(100, 10, vec![50, 50]);
        let b = snap(300, 40, vec![50, 250]);
        let d = WindowDelta::between(&a, &b);
        assert_eq!(d.rows, 200);
        assert_eq!(d.positives, 30);
        // mass 200 all in bin 1 of 2 → midpoint 0.75
        assert!((d.score_mean.unwrap() - 0.75).abs() < 1e-12);
        // a restarted daemon (counters reset) saturates, never wraps
        let r = WindowDelta::between(&b, &a);
        assert_eq!(r.rows, 0);
        assert_eq!(r.positives, 0);
    }
}
