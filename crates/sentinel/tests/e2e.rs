//! End-to-end drift scenario: a real `pnr-serve` daemon (in-process, on
//! a real TCP socket), drifting traffic from a scheduled [`DriftStream`],
//! the sentinel's detector watching real stats deltas, and the refit
//! supervisor publishing through the daemon's lineage-checked hot-swap.
//!
//! Two scenarios anchor the robustness contract:
//!
//! * a step attack-mix shift is detected within a bounded number of
//!   windows, the refit publishes with lineage pointing at the prior
//!   checksum, and no record is dropped anywhere along the way;
//! * a deliberately corrupted refit never replaces last-known-good — the
//!   daemon enters *explicit* degraded mode, visible in `stats` and in
//!   every response envelope, and a later good refit clears it.

use pnr_sentinel::{
    supervise_refit, DaemonClient, DetectorConfig, DriftDetector, DriftVerdict, RefitOutcome,
    SupervisorConfig, WindowDelta,
};
use pnr_telemetry::TelemetrySink;
use serde::Content;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnr_sentinel_e2e_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Trains the dos-vs-rest baseline on the pre-shift mix and saves it.
fn make_baseline(dir: &Path, seed: u64) -> (PathBuf, String) {
    let train = pnr_kddsim::generate_train(1500, seed);
    let target = train.class_code("dos").unwrap();
    let params = pnr_core::PnruleParams::default();
    let (model, report) =
        pnr_core::PnruleLearner::new(params.clone()).fit_with_report(&train, target);
    let artifact =
        pnr_core::ModelArtifact::new(model, params, report, train.schema().clone()).unwrap();
    let checksum = artifact.checksum().unwrap();
    let path = dir.join("baseline.artifact");
    artifact.save(&path).unwrap();
    (path, checksum)
}

/// Runs the daemon library in a thread; returns (join handle, bound addr).
fn start_daemon(
    model: &Path,
    dir: &Path,
) -> (std::thread::JoinHandle<Result<i32, String>>, String) {
    let addr_file = dir.join("daemon.addr");
    let config = pnr_serve::DaemonConfig {
        workers: 2,
        addr_file: Some(addr_file.clone()),
        ..pnr_serve::DaemonConfig::default()
    };
    let model = model.to_path_buf();
    let handle = std::thread::spawn(move || pnr_serve::run(&model, config));
    let mut addr = String::new();
    for _ in 0..400 {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if !s.trim().is_empty() {
                addr = s.trim().to_string();
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(!addr.is_empty(), "daemon never wrote its address file");
    (handle, addr)
}

/// Minimal scoring client (the data plane; the sentinel's [`DaemonClient`]
/// is the control plane).
struct Traffic {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    sent_rows: u64,
    acked_rows: u64,
    next_id: usize,
}

impl Traffic {
    fn connect(addr: &str) -> Traffic {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut t = Traffic {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            sent_rows: 0,
            acked_rows: 0,
            next_id: 0,
        };
        let columns: Vec<String> = pnr_kddsim::ATTR_NAMES
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect();
        let hello = t.request(&format!(
            "{{\"cmd\":\"hello\",\"columns\":[{}]}}",
            columns.join(",")
        ));
        assert_eq!(hello.get("ok"), Some(&Content::Bool(true)), "{hello:?}");
        t
    }

    fn request(&mut self, line: &str) -> Content {
        writeln!(self.writer, "{line}").unwrap();
        let mut buf = String::new();
        self.reader.read_line(&mut buf).unwrap();
        assert!(!buf.is_empty(), "daemon closed the connection");
        serde_json::parse(buf.trim()).unwrap_or_else(|e| panic!("bad reply {buf:?}: {e}"))
    }

    /// Scores every row of `data`; asserts each reply is an accounted-for
    /// `ok` and returns the `degraded` flag seen on the last reply.
    fn score_all(&mut self, data: &pnr_data::Dataset) -> bool {
        const BATCH: usize = 50;
        let mut degraded = false;
        let mut row = 0;
        while row < data.n_rows() {
            let batch = BATCH.min(data.n_rows() - row);
            let rows: Vec<String> = (0..batch)
                .map(|j| {
                    let fields = pnr_kddsim::row_fields(data, row + j);
                    let quoted: Vec<String> = fields.iter().map(|f| format!("\"{f}\"")).collect();
                    format!("[{}]", quoted.join(","))
                })
                .collect();
            let id = self.next_id;
            self.next_id += 1;
            let reply = self.request(&format!(
                "{{\"cmd\":\"score\",\"id\":\"t{id}\",\"rows\":[{}]}}",
                rows.join(",")
            ));
            assert_eq!(reply.get("ok"), Some(&Content::Bool(true)), "{reply:?}");
            let scored = match reply.get("scored") {
                Some(Content::U64(n)) => *n,
                other => panic!("no scored count: {other:?}"),
            };
            let errors = match reply.get("errors") {
                Some(Content::U64(n)) => *n,
                other => panic!("no errors count: {other:?}"),
            };
            // the zero-dropped-records invariant: every submitted row is
            // accounted for as scored or as an explicit per-row error
            assert_eq!(scored + errors, batch as u64, "{reply:?}");
            degraded = match reply.get("degraded") {
                Some(Content::Bool(b)) => *b,
                other => panic!("no degraded flag in score reply: {other:?}"),
            };
            self.sent_rows += batch as u64;
            self.acked_rows += scored + errors;
            row += batch;
        }
        degraded
    }
}

fn fast_supervisor(dir: &Path) -> SupervisorConfig {
    let mut cfg = SupervisorConfig::new(dir.join("refits"));
    cfg.backoff = pnr_core::Backoff::new(3, Duration::from_millis(1), Duration::from_millis(2))
        .with_jitter_seed(7);
    cfg
}

fn sink() -> Arc<dyn TelemetrySink> {
    Arc::new(pnr_telemetry::RecordingSink::new())
}

#[test]
fn step_drift_is_detected_and_refit_publishes_with_lineage() {
    const WINDOW: usize = 400;
    const SHIFT_ROW: usize = 2000; // drift onset: start of window 5
    let dir = temp_dir("happy");
    let (baseline, boot_checksum) = make_baseline(&dir, 21);
    let (daemon, addr) = start_daemon(&baseline, &dir);

    let backoff = pnr_core::Backoff::new(10, Duration::from_millis(50), Duration::from_secs(1));
    let mut ctl = DaemonClient::connect(&addr, &backoff).unwrap();
    let mut traffic = Traffic::connect(&addr);

    let schedule = pnr_kddsim::DriftSchedule::parse(&format!("step:{SHIFT_ROW}")).unwrap();
    assert_eq!(schedule.shift_row(), Some(SHIFT_ROW));
    let mut stream = pnr_kddsim::DriftStream::new(33, schedule);

    let mut detector = DriftDetector::new(DetectorConfig {
        min_window_rows: 50,
        ..DetectorConfig::default()
    });
    let s = sink();
    let mut previous = ctl.stats().unwrap();
    assert_eq!(previous.active_checksum, boot_checksum);
    assert_eq!(previous.mode, "normal");

    // stream windows through the daemon until the detector fires
    let mut refit_window = None;
    for w in 0..30usize {
        let chunk = stream.next_chunk(WINDOW);
        let degraded = traffic.score_all(&chunk);
        assert!(!degraded, "window {w}: daemon degraded without cause");
        let snapshot = ctl.stats().unwrap();
        let delta = WindowDelta::between(&previous, &snapshot);
        previous = snapshot;
        assert_eq!(delta.rows + delta.quarantined, WINDOW as u64, "window {w}");
        if detector.observe(&delta, &s) == DriftVerdict::Refit {
            let lag = (stream.position().saturating_sub(SHIFT_ROW)) / WINDOW;
            // detection lag: windows from drift onset to the verdict
            assert!(lag >= 1, "refit cannot precede the shift");
            assert!(lag <= 20, "detection lag of {lag} windows is too slow");
            refit_window = Some(stream.next_chunk(2000));
            break;
        }
    }
    let refit_window = refit_window.expect("the step shift must reach a Refit verdict");

    // supervise the refit through the real daemon
    let outcome = supervise_refit(
        &refit_window,
        "dos",
        &baseline,
        1,
        &mut ctl,
        &fast_supervisor(&dir),
        &s,
    )
    .unwrap();
    let published_path = match outcome {
        RefitOutcome::Published {
            parent_checksum,
            epoch,
            path,
            attempts,
            ..
        } => {
            assert_eq!(parent_checksum, boot_checksum, "lineage → prior checksum");
            assert_eq!(epoch, 2);
            assert_eq!(attempts, 1);
            path
        }
        other => panic!("expected Published, got {other:?}"),
    };

    // recovery is externally observable: new checksum active, lineage
    // recorded, mode normal, and post-swap traffic still flows un-degraded
    let stats = ctl.stats().unwrap();
    assert_eq!(stats.mode, "normal");
    assert_ne!(stats.active_checksum, boot_checksum);
    let lineage = stats.lineage.expect("swapped epoch carries lineage");
    assert_eq!(lineage.parent_checksum, boot_checksum);
    assert_eq!(lineage.window_id, 1);
    assert_eq!(lineage.verdict, "refit");
    let saved =
        pnr_core::load_with_retry(&published_path, &pnr_core::RetryPolicy::default()).unwrap();
    assert_eq!(saved.checksum().unwrap(), stats.active_checksum);

    let degraded = traffic.score_all(&stream.next_chunk(WINDOW));
    assert!(!degraded);
    assert_eq!(
        traffic.sent_rows, traffic.acked_rows,
        "zero dropped records"
    );

    ctl.shutdown().unwrap();
    assert_eq!(daemon.join().unwrap().unwrap(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_refit_keeps_last_known_good_and_degraded_mode_is_visible() {
    let dir = temp_dir("degraded");
    let (baseline, boot_checksum) = make_baseline(&dir, 41);
    let (daemon, addr) = start_daemon(&baseline, &dir);

    let backoff = pnr_core::Backoff::new(10, Duration::from_millis(50), Duration::from_secs(1));
    let mut ctl = DaemonClient::connect(&addr, &backoff).unwrap();
    let mut traffic = Traffic::connect(&addr);
    let s = sink();

    // every candidate is deliberately corrupted: the publish must fail,
    // last-known-good must keep serving, and the daemon must degrade
    let window = pnr_kddsim::generate_test(2000, 42);
    let mut cfg = fast_supervisor(&dir);
    cfg.corrupt_artifacts = true;
    cfg.max_attempts = 2;
    let outcome = supervise_refit(&window, "dos", &baseline, 1, &mut ctl, &cfg, &s).unwrap();
    match outcome {
        RefitOutcome::Degraded {
            attempts,
            last_error,
        } => {
            assert_eq!(attempts, 2);
            assert!(last_error.contains("swap_failed"), "{last_error}");
        }
        other => panic!("expected Degraded, got {other:?}"),
    }

    // degraded is explicit in stats and in every response envelope,
    // while the last-known-good model keeps serving every record
    let stats = ctl.stats().unwrap();
    assert_eq!(stats.mode, "degraded");
    assert_eq!(stats.active_checksum, boot_checksum, "LKG still serving");
    assert!(
        stats
            .degraded_reason
            .as_deref()
            .unwrap_or("")
            .contains("window 1"),
        "{:?}",
        stats.degraded_reason
    );
    let degraded = traffic.score_all(&pnr_kddsim::generate_train(200, 43));
    assert!(degraded, "score replies must carry degraded=true");
    assert_eq!(
        traffic.sent_rows, traffic.acked_rows,
        "zero dropped records"
    );

    // a later good refit publishes and clears degraded mode
    cfg.corrupt_artifacts = false;
    let outcome = supervise_refit(&window, "dos", &baseline, 2, &mut ctl, &cfg, &s).unwrap();
    assert!(
        matches!(outcome, RefitOutcome::Published { .. }),
        "{outcome:?}"
    );
    let stats = ctl.stats().unwrap();
    assert_eq!(stats.mode, "normal");
    assert_eq!(stats.degraded_reason, None);
    let degraded = traffic.score_all(&pnr_kddsim::generate_train(100, 44));
    assert!(!degraded, "recovery must clear the envelope flag");

    ctl.shutdown().unwrap();
    assert_eq!(daemon.join().unwrap().unwrap(), 0);
    let _ = std::fs::remove_dir_all(&dir);
}
