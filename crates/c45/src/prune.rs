//! Pessimistic-error pruning with confidence-factor upper bounds.
//!
//! C4.5 estimates a node's true error from its training error `e` out of
//! `N` records as the upper limit of the binomial confidence interval at
//! confidence factor CF. A subtree whose leaves' summed upper error is no
//! better than the error of collapsing it to a single leaf gets replaced
//! (subtree replacement). The paper points out the weakness this crate
//! faithfully reproduces: "the estimate for a small disjunct may not be
//! reliable because of its low support".

use crate::params::C45Params;
use crate::tree::{Node, Tree};
use pnr_data::Dataset;

/// Inverse standard-normal CDF (Acklam's rational approximation, |ε| <
/// 1.15e-9) — used to turn the confidence factor into a z-value.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile requires p in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// C4.5's `addErrs`: the extra errors to add to the observed `e` errors out
/// of `n` records so the total is the CF upper confidence bound.
pub fn added_errors(n: f64, e: f64, cf: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if e < 1e-9 {
        // exact solution of (1 - err)^n = cf
        return n * (1.0 - cf.powf(1.0 / n));
    }
    if e + 0.5 >= n {
        return (n - e).max(0.0);
    }
    let z = normal_quantile(1.0 - cf);
    let f = (e + 0.5) / n; // continuity correction, as in C4.5
    let r = (f + z * z / (2.0 * n) + z * (f / n - f * f / n + z * z / (4.0 * n * n)).sqrt())
        / (1.0 + z * z / n);
    (r * n - e).max(0.0)
}

/// Upper-bound error of treating `dist` as a single leaf.
pub fn leaf_upper_error(dist: &[f64], cf: f64) -> f64 {
    let n = pnr_data::ordered_sum(dist.iter().copied());
    let e = n - dist.iter().fold(0.0f64, |a, &b| a.max(b));
    e + added_errors(n, e, cf)
}

fn subtree_upper_error(node: &Node, cf: f64) -> f64 {
    match node {
        Node::Leaf { dist } => leaf_upper_error(dist, cf),
        Node::CatSplit { children, .. } => {
            pnr_data::ordered_sum(children.iter().map(|c| subtree_upper_error(c, cf)))
        }
        Node::NumSplit { left, right, .. } => {
            subtree_upper_error(left, cf) + subtree_upper_error(right, cf)
        }
    }
}

/// Prunes `tree` in place (bottom-up subtree replacement).
pub fn prune_tree(tree: &mut Tree, _data: &Dataset, params: &C45Params) {
    prune_node(&mut tree.root, params.cf);
}

fn prune_node(node: &mut Node, cf: f64) {
    // prune children first
    match node {
        Node::Leaf { .. } => return,
        Node::CatSplit { children, .. } => {
            for c in children.iter_mut() {
                prune_node(c, cf);
            }
        }
        Node::NumSplit { left, right, .. } => {
            prune_node(left, cf);
            prune_node(right, cf);
        }
    }
    let as_leaf = leaf_upper_error(node.dist(), cf);
    let as_subtree = subtree_upper_error(node, cf);
    // C4.5 collapses when the leaf is no worse than the subtree plus a
    // small tolerance (0.1 errors).
    if as_leaf <= as_subtree + 0.1 {
        *node = Node::Leaf {
            dist: node.dist().to_vec(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_tree;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    #[test]
    fn normal_quantile_matches_known_values() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.75) - 0.6744898).abs() < 1e-6);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn added_errors_zero_observed() {
        // (1-err)^n = cf ⇒ known closed form
        let n = 10.0;
        let cf = 0.25;
        let add = added_errors(n, 0.0, cf);
        assert!(((1.0 - add / n).powf(n) - cf).abs() < 1e-9);
    }

    #[test]
    fn added_errors_shrink_with_support() {
        // same observed error *rate*, more data → tighter bound
        let small = added_errors(10.0, 2.0, 0.25) / 10.0;
        let large = added_errors(1000.0, 200.0, 0.25) / 1000.0;
        assert!(small > large, "small-support bound {small} vs {large}");
    }

    #[test]
    fn added_errors_saturate_at_n() {
        assert_eq!(added_errors(5.0, 5.0, 0.25), 0.0);
        assert_eq!(added_errors(0.0, 0.0, 0.25), 0.0);
    }

    #[test]
    fn pruning_collapses_noise_splits() {
        // labels are ~90% class "a" with label noise uncorrelated to x: a
        // deep tree memorises the noise and pruning should collapse it
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..200 {
            let class = if i % 10 == 0 { "b" } else { "a" };
            b.push_row(&[Value::num((i % 37) as f64)], class, 1.0)
                .unwrap();
        }
        let d = b.finish();
        // disable the Release-8 penalty so the unpruned tree overfits the
        // noise; pruning must then collapse it
        let params = C45Params {
            release8_penalty: false,
            ..Default::default()
        };
        let mut t = build_tree(&d, &params);
        let before = t.n_leaves();
        assert!(
            before > 1,
            "unpenalised tree should overfit, got {before} leaves"
        );
        prune_tree(&mut t, &d, &params);
        let after = t.n_leaves();
        assert!(after < before, "pruning should shrink {before} -> {after}");
        assert_eq!(after, 1, "pure-noise structure collapses to the root");
    }

    #[test]
    fn pruning_keeps_real_structure() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..200 {
            let x = (i % 20) as f64;
            b.push_row(&[Value::num(x)], if x < 10.0 { "a" } else { "b" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let params = C45Params::default();
        let mut t = build_tree(&d, &params);
        prune_tree(&mut t, &d, &params);
        assert!(t.n_leaves() >= 2, "true split must survive");
        let correct = (0..d.n_rows())
            .filter(|&r| t.classify(&d, r) == d.label(r))
            .count();
        assert_eq!(correct, d.n_rows());
    }

    #[test]
    fn leaf_upper_error_exceeds_observed() {
        let dist = [90.0, 10.0];
        let upper = leaf_upper_error(&dist, 0.25);
        assert!(upper > 10.0);
        assert!(upper < 20.0, "bound {upper} should stay reasonable");
    }
}
