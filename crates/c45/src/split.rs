//! C4.5 split selection: gain ratio with the average-gain guard and the
//! Release-8 continuous-split penalty.

use crate::params::C45Params;
use pnr_data::{Column, Dataset};

/// How a node splits its data.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitKind {
    /// Multiway split: one branch per dictionary code of the attribute.
    Categorical,
    /// Binary split `A ≤ threshold` / `A > threshold`.
    Numeric {
        /// The threshold (a value occurring in the data, C4.5 style).
        threshold: f64,
    },
}

/// A scored candidate split.
#[derive(Debug, Clone)]
pub struct SplitCandidate {
    /// Attribute to split on.
    pub attr: usize,
    /// Split shape.
    pub kind: SplitKind,
    /// Information gain (numeric splits already penalised).
    pub gain: f64,
    /// Gain divided by split information.
    pub gain_ratio: f64,
}

/// Weighted class distribution of `rows`.
pub fn class_weights(data: &Dataset, rows: &[u32]) -> Vec<f64> {
    let mut dist = vec![0.0; data.n_classes()];
    for &r in rows {
        dist[data.label(r as usize) as usize] += data.weight(r as usize);
    }
    dist
}

/// Entropy (bits) of a weighted class distribution.
pub fn entropy_of(dist: &[f64]) -> f64 {
    let total = pnr_data::ordered_sum(dist.iter().copied());
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &w in dist {
        if w > 0.0 {
            let p = w / total;
            h -= p * p.log2();
        }
    }
    h
}

fn split_info(weights: &[f64]) -> f64 {
    entropy_of(weights)
}

/// Evaluates the best split of `rows` over every attribute, applying C4.5's
/// selection rule: among candidates whose gain is at least the average
/// positive gain, pick the highest gain ratio.
pub fn find_best_split(data: &Dataset, rows: &[u32], params: &C45Params) -> Option<SplitCandidate> {
    let dist = class_weights(data, rows);
    let base_entropy = entropy_of(&dist);
    let total = pnr_data::ordered_sum(dist.iter().copied());
    if total <= 0.0 {
        return None;
    }

    let mut candidates: Vec<SplitCandidate> = Vec::new();
    for attr in 0..data.n_attrs() {
        let cand = match data.column(attr) {
            Column::Cat(_) => eval_categorical(data, rows, attr, base_entropy, total, params),
            Column::Num(_) => eval_numeric(data, rows, attr, base_entropy, total, params),
        };
        if let Some(c) = cand {
            candidates.push(c);
        }
    }
    if candidates.is_empty() {
        return None;
    }
    let avg_gain =
        pnr_data::ordered_sum(candidates.iter().map(|c| c.gain)) / candidates.len() as f64;
    candidates
        .into_iter()
        .filter(|c| c.gain + 1e-12 >= avg_gain)
        .max_by(|a, b| {
            a.gain_ratio
                .partial_cmp(&b.gain_ratio)
                .expect("finite ratios")
        })
}

fn eval_categorical(
    data: &Dataset,
    rows: &[u32],
    attr: usize,
    base_entropy: f64,
    total: f64,
    params: &C45Params,
) -> Option<SplitCandidate> {
    let n_values = data.schema().attr(attr).dict.len();
    let n_classes = data.n_classes();
    if n_values < 2 {
        return None;
    }
    // per-value class distributions
    let mut dists = vec![0.0f64; n_values * n_classes];
    let mut value_w = vec![0.0f64; n_values];
    for &r in rows {
        let row = r as usize;
        let v = data.cat(attr, row) as usize;
        let w = data.weight(row);
        dists[v * n_classes + data.label(row) as usize] += w;
        value_w[v] += w;
    }
    let populated = value_w.iter().filter(|&&w| w >= params.min_objects).count();
    if populated < 2 {
        return None;
    }
    let mut cond_entropy = 0.0;
    for v in 0..n_values {
        if value_w[v] > 0.0 {
            // lint:allow(unordered-float-sum) — fixed dictionary-code order
            cond_entropy +=
                value_w[v] / total * entropy_of(&dists[v * n_classes..(v + 1) * n_classes]);
        }
    }
    let gain = base_entropy - cond_entropy;
    if gain <= 1e-12 {
        return None;
    }
    let si = split_info(&value_w);
    if si <= 0.0 {
        return None;
    }
    Some(SplitCandidate {
        attr,
        kind: SplitKind::Categorical,
        gain,
        gain_ratio: gain / si,
    })
}

fn eval_numeric(
    data: &Dataset,
    rows: &[u32],
    attr: usize,
    base_entropy: f64,
    total: f64,
    params: &C45Params,
) -> Option<SplitCandidate> {
    let n_classes = data.n_classes();
    // Sort the node's rows by value (local sort: node row counts shrink
    // quickly, a global index scan would touch the whole dataset per node).
    let mut order: Vec<u32> = rows.to_vec();
    order.sort_by(|&a, &b| {
        data.num(attr, a as usize)
            .partial_cmp(&data.num(attr, b as usize))
            .expect("finite values")
    });

    let mut best: Option<(f64, f64)> = None; // (threshold, gain)
    let mut cum = vec![0.0f64; n_classes];
    let mut cum_w = 0.0;
    let full = class_weights(data, &order);
    let mut distinct = 1usize;
    for i in 0..order.len() {
        let row = order[i] as usize;
        let w = data.weight(row);
        cum[data.label(row) as usize] += w;
        cum_w += w; // lint:allow(unordered-float-sum) — prefix sum in sorted-projection order
        if i + 1 < order.len() {
            let v = data.num(attr, row);
            let v_next = data.num(attr, order[i + 1] as usize);
            if v_next != v {
                distinct += 1;
                let right_w = total - cum_w;
                if cum_w + 1e-12 >= params.min_objects && right_w + 1e-12 >= params.min_objects {
                    let right: Vec<f64> = full.iter().zip(&cum).map(|(f, c)| f - c).collect();
                    let cond =
                        cum_w / total * entropy_of(&cum) + right_w / total * entropy_of(&right);
                    let gain = base_entropy - cond;
                    if best.is_none_or(|(_, g)| gain > g) {
                        best = Some((v, gain));
                    }
                }
            }
        }
    }
    let (threshold, mut gain) = best?;
    if params.release8_penalty && distinct > 1 {
        // Quinlan's Release-8 correction: a continuous test must pay for
        // choosing its threshold among the distinct values present.
        gain -= ((distinct - 1) as f64).log2() / total;
    }
    if gain <= 1e-12 {
        return None;
    }
    // split info of the two-way partition at the chosen threshold
    let left_w = pnr_data::ordered_sum(
        rows.iter()
            .filter(|&&r| data.num(attr, r as usize) <= threshold)
            .map(|&r| data.weight(r as usize)),
    );
    let si = split_info(&[left_w, total - left_w]);
    if si <= 0.0 {
        return None;
    }
    Some(SplitCandidate {
        attr,
        kind: SplitKind::Numeric { threshold },
        gain,
        gain_ratio: gain / si,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn all_rows(d: &Dataset) -> Vec<u32> {
        (0..d.n_rows() as u32).collect()
    }

    #[test]
    fn entropy_basics() {
        assert_eq!(entropy_of(&[10.0, 0.0]), 0.0);
        assert!((entropy_of(&[5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy_of(&[]), 0.0);
        assert_eq!(entropy_of(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn numeric_split_on_separable_data() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..40 {
            let x = i as f64;
            b.push_row(&[Value::num(x)], if x < 20.0 { "a" } else { "b" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let s = find_best_split(&d, &all_rows(&d), &C45Params::default()).unwrap();
        assert_eq!(s.attr, 0);
        match s.kind {
            SplitKind::Numeric { threshold } => assert_eq!(threshold, 19.0),
            ref k => panic!("expected numeric split, got {k:?}"),
        }
        assert!(s.gain > 0.85, "gain {}", s.gain); // 1.0 minus the Release-8 penalty log2(39)/40
    }

    #[test]
    fn categorical_split_preferred_when_informative() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("noise", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for i in 0..60 {
            let k = ["p", "q", "r"][i % 3];
            let class = if k == "p" { "a" } else { "b" };
            b.push_row(&[Value::num((i % 7) as f64), Value::cat(k)], class, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let s = find_best_split(&d, &all_rows(&d), &C45Params::default()).unwrap();
        assert_eq!(s.attr, 1);
        assert_eq!(s.kind, SplitKind::Categorical);
    }

    #[test]
    fn pure_node_has_no_split() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..10 {
            b.push_row(&[Value::num(i as f64)], "only", 1.0).unwrap();
        }
        let d = b.finish();
        assert!(find_best_split(&d, &all_rows(&d), &C45Params::default()).is_none());
    }

    #[test]
    fn min_objects_blocks_tiny_branches() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.push_row(&[Value::num(0.0)], "a", 1.0).unwrap();
        for i in 1..10 {
            b.push_row(&[Value::num(i as f64)], "b", 1.0).unwrap();
        }
        let d = b.finish();
        // splitting off the single `a` row needs a branch of weight 1 < 5
        let params = C45Params {
            min_objects: 5.0,
            ..Default::default()
        };
        let s = find_best_split(&d, &all_rows(&d), &params);
        if let Some(s) = s {
            if let SplitKind::Numeric { threshold } = s.kind {
                let left = (0..10).filter(|&i| i as f64 <= threshold).count();
                assert!(left >= 5 && 10 - left >= 5);
            }
        }
    }

    #[test]
    fn release8_penalty_reduces_gain() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..20 {
            let x = i as f64;
            b.push_row(&[Value::num(x)], if x < 10.0 { "a" } else { "b" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let with = find_best_split(&d, &all_rows(&d), &C45Params::default()).unwrap();
        let without = find_best_split(
            &d,
            &all_rows(&d),
            &C45Params {
                release8_penalty: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.gain < without.gain);
        let expected_penalty = (19.0f64).log2() / 20.0;
        assert!((without.gain - with.gain - expected_penalty).abs() < 1e-9);
    }

    #[test]
    fn weighted_rows_shift_distributions() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.push_row(&[Value::num(0.0)], "a", 10.0).unwrap();
        b.push_row(&[Value::num(1.0)], "b", 1.0).unwrap();
        let d = b.finish();
        let dist = class_weights(&d, &all_rows(&d));
        assert_eq!(dist, vec![10.0, 1.0]);
    }
}
