//! The C4.5rules pipeline: path extraction, per-rule generalisation,
//! DL-guided subset selection, class ranking and the default class.

use crate::model::{C45RulesModel, ClassRuleGroup};
use crate::params::C45Params;
use crate::prune::added_errors;
use crate::tree::{majority_of, Node, Tree};
use pnr_data::Dataset;
use pnr_rules::mdl::{count_possible_conditions, total_dl};
use pnr_rules::{Condition, Rule};

/// One extracted rule predicting a class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRule {
    /// The antecedent.
    pub rule: Rule,
    /// The class the rule predicts.
    pub class: u32,
}

/// Extracts one rule per leaf path of the (pruned) tree. Paths to leaves
/// with zero training weight are skipped — they predict nothing.
pub fn extract_rules(tree: &Tree) -> Vec<ClassRule> {
    let mut out = Vec::new();
    let mut path = Vec::new();
    walk(&tree.root, &mut path, &mut out);
    out
}

fn walk(node: &Node, path: &mut Vec<Condition>, out: &mut Vec<ClassRule>) {
    match node {
        Node::Leaf { dist } => {
            let total = pnr_data::ordered_sum(dist.iter().copied());
            if total > 0.0 {
                out.push(ClassRule {
                    rule: Rule::new(path.clone()),
                    class: majority_of(dist),
                });
            }
        }
        Node::CatSplit { attr, children, .. } => {
            for (code, child) in children.iter().enumerate() {
                path.push(Condition::CatEq {
                    attr: *attr,
                    value: pnr_data::index::to_u32(code, "dictionary code"),
                });
                walk(child, path, out);
                path.pop();
            }
        }
        Node::NumSplit {
            attr,
            threshold,
            left,
            right,
            ..
        } => {
            path.push(Condition::NumLe {
                attr: *attr,
                value: *threshold,
            });
            walk(left, path, out);
            path.pop();
            path.push(Condition::NumGt {
                attr: *attr,
                value: *threshold,
            });
            walk(right, path, out);
            path.pop();
        }
    }
}

/// Pessimistic error rate of `rule` as a predictor of `class` over the full
/// training set (CF upper bound, like C4.5rules' `errs` estimate). Returns
/// 1.0 for a rule with empty coverage.
pub fn pessimistic_error(rule: &Rule, class: u32, data: &Dataset, cf: f64) -> f64 {
    let mut n = 0.0;
    let mut e = 0.0;
    for row in 0..data.n_rows() {
        if rule.matches(data, row) {
            let w = data.weight(row);
            n += w; // lint:allow(unordered-float-sum) — single pass in row order
            if data.label(row) != class {
                e += w; // lint:allow(unordered-float-sum) — same ordered pass
            }
        }
    }
    if n <= 0.0 {
        return 1.0;
    }
    (e + added_errors(n, e, cf)) / n
}

/// Generalises a rule by greedily deleting conditions: each round removes
/// the condition whose deletion gives the lowest pessimistic error, as long
/// as that error does not exceed the current rule's (Quinlan's procedure,
/// using the entire training set — unlike RIPPER's random prune split).
pub fn generalize_rule(rule: &Rule, class: u32, data: &Dataset, cf: f64) -> Rule {
    let mut current = rule.clone();
    let mut current_err = pessimistic_error(&current, class, data, cf);
    loop {
        if current.len() <= 1 {
            break;
        }
        let mut best: Option<(usize, f64)> = None;
        for i in 0..current.len() {
            let cand = current.without_condition(i);
            let err = pessimistic_error(&cand, class, data, cf);
            if err <= current_err && best.is_none_or(|(_, be)| err < be) {
                best = Some((i, err));
            }
        }
        match best {
            Some((i, err)) => {
                current = current.without_condition(i);
                current_err = err;
            }
            None => break,
        }
    }
    current
}

fn dedupe(rules: Vec<ClassRule>) -> Vec<ClassRule> {
    let mut seen: Vec<(u32, Vec<String>)> = Vec::new();
    let mut out = Vec::new();
    for cr in rules {
        let mut sig: Vec<String> = cr
            .rule
            .conditions()
            .iter()
            .map(|c| format!("{c:?}"))
            .collect();
        sig.sort();
        if !seen.iter().any(|(cls, s)| *cls == cr.class && *s == sig) {
            seen.push((cr.class, sig));
            out.push(cr);
        }
    }
    out
}

/// Greedy DL-based subset selection for one class's rules (the polishing
/// step C4.5rules performs per class). Starts from all rules and keeps
/// removing the rule whose removal lowers the binary-task description
/// length until no removal helps.
pub fn select_subset(
    mut rules: Vec<Rule>,
    class: u32,
    data: &Dataset,
    params: &C45Params,
) -> Vec<Rule> {
    rules.truncate(params.max_rules_per_class);
    let n_possible = count_possible_conditions(data);
    let pos_total = pnr_data::ordered_sum(
        (0..data.n_rows())
            .filter(|&r| data.label(r) == class)
            .map(|r| data.weight(r)),
    );
    let n_total = pnr_data::ordered_sum(data.weights().iter().copied());

    let dl_of = |rules: &[Rule]| -> f64 {
        let mut covered = 0.0;
        let mut covered_pos = 0.0;
        for row in 0..data.n_rows() {
            if rules.iter().any(|r| r.matches(data, row)) {
                let w = data.weight(row);
                covered += w; // lint:allow(unordered-float-sum) — single pass in row order
                if data.label(row) == class {
                    covered_pos += w; // lint:allow(unordered-float-sum) — same ordered pass
                }
            }
        }
        let lens: Vec<usize> = rules.iter().map(|r| r.len()).collect();
        total_dl(
            n_possible,
            &lens,
            covered,
            n_total - covered,
            covered - covered_pos,
            pos_total - covered_pos,
        )
    };

    let mut current_dl = dl_of(&rules);
    loop {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..rules.len() {
            let mut trial = rules.clone();
            trial.remove(i);
            let dl = dl_of(&trial);
            if dl < current_dl && best.is_none_or(|(_, bd)| dl < bd) {
                best = Some((i, dl));
            }
        }
        match best {
            Some((i, dl)) => {
                rules.remove(i);
                current_dl = dl;
            }
            None => break,
        }
    }
    rules
}

/// The full pipeline: tree → rules → generalisation → per-class subsets →
/// ranking → default class.
pub fn rules_from_tree(tree: &Tree, data: &Dataset, params: &C45Params) -> C45RulesModel {
    let raw = extract_rules(tree);
    let generalized: Vec<ClassRule> = raw
        .into_iter()
        .map(|cr| ClassRule {
            rule: generalize_rule(&cr.rule, cr.class, data, params.cf),
            class: cr.class,
        })
        .collect();
    let deduped = dedupe(generalized);

    // Per-class subset selection.
    let n_classes = data.n_classes();
    let mut groups: Vec<ClassRuleGroup> = Vec::new();
    for class in 0..pnr_data::index::to_u32(n_classes, "class count") {
        let class_rules: Vec<Rule> = deduped
            .iter()
            .filter(|cr| cr.class == class)
            .map(|cr| cr.rule.clone())
            .collect();
        if class_rules.is_empty() {
            continue;
        }
        let selected = select_subset(class_rules, class, data, params);
        if selected.is_empty() {
            continue;
        }
        groups.push(ClassRuleGroup::build(class, selected, data));
    }

    // Rank classes by ascending false positives of their rule groups.
    let mut fp_of: Vec<(usize, f64)> = groups
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let fp = pnr_data::ordered_sum(
                (0..data.n_rows())
                    .filter(|&row| {
                        data.label(row) != g.class && g.rules.iter().any(|r| r.matches(data, row))
                    })
                    .map(|row| data.weight(row)),
            );
            (i, fp)
        })
        .collect();
    fp_of.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fp"));
    let groups: Vec<ClassRuleGroup> = fp_of.into_iter().map(|(i, _)| groups[i].clone()).collect();

    // Default class: majority among training records no group covers.
    let mut uncovered = vec![0.0f64; n_classes];
    let mut any_uncovered = false;
    for row in 0..data.n_rows() {
        let covered = groups
            .iter()
            .any(|g| g.rules.iter().any(|r| r.matches(data, row)));
        if !covered {
            uncovered[data.label(row) as usize] += data.weight(row);
            any_uncovered = true;
        }
    }
    let default_class = if any_uncovered {
        majority_of(&uncovered)
    } else {
        majority_of(&data.class_weights())
    };

    C45RulesModel::new(groups, default_class, n_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::build_tree;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn band_data() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for i in 0..300 {
            let x = (i % 10) as f64;
            let k = if (i / 10) % 3 == 0 { "p" } else { "q" };
            let class = if x < 4.0 && k == "p" { "a" } else { "b" };
            b.push_row(&[Value::num(x), Value::cat(k)], class, 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn extraction_yields_one_rule_per_populated_leaf() {
        let d = band_data();
        let t = build_tree(&d, &C45Params::default());
        let rules = extract_rules(&t);
        assert!(!rules.is_empty());
        // every rule matches at least one training record of its class
        for cr in &rules {
            let hit = (0..d.n_rows()).any(|r| cr.rule.matches(&d, r) && d.label(r) == cr.class);
            assert!(hit, "rule {:?} matches nothing of its class", cr.rule);
        }
    }

    #[test]
    fn generalization_drops_redundant_conditions() {
        let d = band_data();
        // x<=3 AND x<=8: second condition is redundant
        let rule = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 3.0,
            },
            Condition::NumLe {
                attr: 0,
                value: 8.0,
            },
            Condition::CatEq {
                attr: 1,
                value: d.schema().attr(1).dict.code("p").unwrap(),
            },
        ]);
        let a = d.class_code("a").unwrap();
        let g = generalize_rule(&rule, a, &d, 0.25);
        assert!(g.len() < rule.len(), "should drop the redundant bound");
        // and the result still covers the class cleanly
        assert!(pessimistic_error(&g, a, &d, 0.25) < 0.2);
    }

    #[test]
    fn generalization_keeps_needed_conditions() {
        let d = band_data();
        let a = d.class_code("a").unwrap();
        let rule = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 3.0,
            },
            Condition::CatEq {
                attr: 1,
                value: d.schema().attr(1).dict.code("p").unwrap(),
            },
        ]);
        let g = generalize_rule(&rule, a, &d, 0.25);
        assert_eq!(g.len(), 2, "both conditions carry signal");
    }

    #[test]
    fn pessimistic_error_of_empty_coverage_is_one() {
        let d = band_data();
        let rule = Rule::new(vec![Condition::NumGt {
            attr: 0,
            value: 100.0,
        }]);
        assert_eq!(pessimistic_error(&rule, 0, &d, 0.25), 1.0);
    }

    #[test]
    fn subset_selection_removes_junk() {
        let d = band_data();
        let a = d.class_code("a").unwrap();
        let good = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 3.0,
            },
            Condition::CatEq {
                attr: 1,
                value: d.schema().attr(1).dict.code("p").unwrap(),
            },
        ]);
        // junk rule covering mostly class b
        let junk = Rule::new(vec![Condition::NumGt {
            attr: 0,
            value: 5.0,
        }]);
        let kept = select_subset(vec![good.clone(), junk], a, &d, &C45Params::default());
        assert_eq!(kept, vec![good]);
    }

    #[test]
    fn full_pipeline_classifies_training_data() {
        let d = band_data();
        let model = rules_from_tree(
            &build_tree(&d, &C45Params::default()),
            &d,
            &C45Params::default(),
        );
        let correct = (0..d.n_rows())
            .filter(|&r| model.classify(&d, r) == d.label(r))
            .count();
        assert!(
            correct as f64 / d.n_rows() as f64 > 0.97,
            "accuracy {}",
            correct as f64 / d.n_rows() as f64
        );
    }

    #[test]
    fn dedupe_removes_identical_rules() {
        let r = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 1.0,
        }]);
        let rules = vec![
            ClassRule {
                rule: r.clone(),
                class: 0,
            },
            ClassRule {
                rule: r.clone(),
                class: 0,
            },
            ClassRule { rule: r, class: 1 },
        ];
        let d = dedupe(rules);
        assert_eq!(d.len(), 2, "same rule for another class is kept");
    }
}
