//! Trained C4.5 models (tree and rules) and their one-vs-rest adapters.

use crate::tree::Tree;
use pnr_data::{Dataset, Schema};
use pnr_rules::{BinaryClassifier, Rule};
use serde::{Deserialize, Serialize};

/// A pruned C4.5 decision tree as a multiclass classifier. This is the
/// model the paper reports as `C4.5` / `C4.5-we` (for the `-we` rows it
/// reports the tree rather than rules, because rule generation from huge
/// stratified trees was impractically slow — we follow suit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct C45TreeModel {
    tree: Tree,
}

impl C45TreeModel {
    pub(crate) fn new(tree: Tree) -> Self {
        C45TreeModel { tree }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Predicted class of `row`.
    pub fn classify(&self, data: &Dataset, row: usize) -> u32 {
        self.tree.classify(data, row)
    }

    /// Class-probability estimate from the leaf distribution.
    pub fn class_prob(&self, data: &Dataset, row: usize, class: u32) -> f64 {
        let dist = self.tree.root.classify_dist(data, row);
        let total = pnr_data::ordered_sum(dist.iter().copied());
        if total <= 0.0 {
            0.0
        } else {
            dist[class as usize] / total
        }
    }

    /// One-vs-rest adapter for `target`.
    pub fn binary_view(&self, target: u32) -> BinaryTreeView<'_> {
        BinaryTreeView {
            model: self,
            target,
        }
    }
}

/// [`BinaryClassifier`] view of a tree for one target class.
#[derive(Debug, Clone, Copy)]
pub struct BinaryTreeView<'a> {
    model: &'a C45TreeModel,
    target: u32,
}

impl BinaryClassifier for BinaryTreeView<'_> {
    fn score(&self, data: &Dataset, row: usize) -> f64 {
        self.model.class_prob(data, row, self.target)
    }

    fn predict(&self, data: &Dataset, row: usize) -> bool {
        // the tree's crisp decision, consistent with multiclass use
        self.model.classify(data, row) == self.target
    }
}

/// The selected rules of one class, with training-time confidences.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassRuleGroup {
    /// The class every rule in the group predicts.
    pub class: u32,
    /// The selected rules.
    pub rules: Vec<Rule>,
    /// Laplace accuracy of each rule on the training data.
    pub confidences: Vec<f64>,
}

impl ClassRuleGroup {
    /// Builds a group, estimating per-rule Laplace confidences.
    pub fn build(class: u32, rules: Vec<Rule>, data: &Dataset) -> Self {
        let confidences = rules
            .iter()
            .map(|r| {
                let mut n = 0.0;
                let mut pos = 0.0;
                for row in 0..data.n_rows() {
                    if r.matches(data, row) {
                        let w = data.weight(row);
                        n += w; // lint:allow(unordered-float-sum) — single pass in row order
                        if data.label(row) == class {
                            pos += w; // lint:allow(unordered-float-sum) — same ordered pass
                        }
                    }
                }
                (pos + 1.0) / (n + 2.0)
            })
            .collect();
        ClassRuleGroup {
            class,
            rules,
            confidences,
        }
    }
}

/// The C4.5rules model: class rule groups in rank order plus a default
/// class. A record gets the class of the first group containing a matching
/// rule, or the default.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct C45RulesModel {
    groups: Vec<ClassRuleGroup>,
    default_class: u32,
    n_classes: usize,
}

impl C45RulesModel {
    pub(crate) fn new(groups: Vec<ClassRuleGroup>, default_class: u32, n_classes: usize) -> Self {
        C45RulesModel {
            groups,
            default_class,
            n_classes,
        }
    }

    /// The ranked rule groups.
    pub fn groups(&self) -> &[ClassRuleGroup] {
        &self.groups
    }

    /// The default class for uncovered records.
    pub fn default_class(&self) -> u32 {
        self.default_class
    }

    /// Total number of rules across groups.
    pub fn n_rules(&self) -> usize {
        self.groups.iter().map(|g| g.rules.len()).sum::<usize>()
    }

    /// Predicted class of `row`.
    pub fn classify(&self, data: &Dataset, row: usize) -> u32 {
        for g in &self.groups {
            if g.rules.iter().any(|r| r.matches(data, row)) {
                return g.class;
            }
        }
        self.default_class
    }

    /// Confidence of the decision: the matched rule's Laplace accuracy, or
    /// a neutral 0.5 for the default class.
    pub fn confidence(&self, data: &Dataset, row: usize) -> f64 {
        for g in &self.groups {
            for (r, &c) in g.rules.iter().zip(&g.confidences) {
                if r.matches(data, row) {
                    return c;
                }
            }
        }
        0.5
    }

    /// One-vs-rest adapter for `target`.
    pub fn binary_view(&self, target: u32) -> BinaryRulesView<'_> {
        BinaryRulesView {
            model: self,
            target,
        }
    }

    /// Human-readable rendering.
    pub fn describe(&self, schema: &Schema) -> String {
        let mut s = format!(
            "C4.5rules model: {} rules in {} groups, default class {}\n",
            self.n_rules(),
            self.groups.len(),
            schema.classes.name(self.default_class)
        );
        for g in &self.groups {
            s.push_str(&format!("class {}:\n", schema.classes.name(g.class)));
            for r in &g.rules {
                s.push_str(&format!("  {}\n", r.display(schema)));
            }
        }
        s
    }
}

/// [`BinaryClassifier`] view of a rules model for one target class.
#[derive(Debug, Clone, Copy)]
pub struct BinaryRulesView<'a> {
    model: &'a C45RulesModel,
    target: u32,
}

impl BinaryClassifier for BinaryRulesView<'_> {
    fn score(&self, data: &Dataset, row: usize) -> f64 {
        if self.model.classify(data, row) == self.target {
            self.model.confidence(data, row)
        } else {
            0.0
        }
    }

    fn predict(&self, data: &Dataset, row: usize) -> bool {
        self.model.classify(data, row) == self.target
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::C45Learner;
    use pnr_data::{stratify_weights, AttrType, DatasetBuilder, Value};
    use pnr_rules::evaluate_classifier;

    fn band_data(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n {
            let x = (i % 20) as f64;
            let k = if (i / 20) % 3 == 0 { "p" } else { "q" };
            let target = x < 4.0 && k == "p";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn tree_binary_view_evaluates_well() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let model = C45Learner::default().fit_tree(&d);
        let cm = evaluate_classifier(&model.binary_view(target), &d, target);
        assert!(cm.f_measure() > 0.95, "F {}", cm.f_measure());
    }

    #[test]
    fn rules_binary_view_evaluates_well() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let model = C45Learner::default().fit_rules(&d);
        let cm = evaluate_classifier(&model.binary_view(target), &d, target);
        assert!(cm.f_measure() > 0.95, "F {}", cm.f_measure());
    }

    #[test]
    fn rules_generalise_to_fresh_sample() {
        let train = band_data(600);
        let test = band_data(240);
        let target = train.class_code("pos").unwrap();
        let model = C45Learner::default().fit_rules(&train);
        let cm = evaluate_classifier(&model.binary_view(target), &test, target);
        assert!(cm.f_measure() > 0.9, "F {}", cm.f_measure());
    }

    #[test]
    fn stratified_tree_leans_to_recall() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let w = stratify_weights(&d, target);
        let model = C45Learner::default().fit_tree(&d.with_weights(w));
        let cm = evaluate_classifier(&model.binary_view(target), &d, target);
        assert!(cm.recall() > 0.9, "stratified recall {}", cm.recall());
    }

    #[test]
    fn default_class_covers_unmatched_records() {
        let d = band_data(600);
        let model = C45Learner::default().fit_rules(&d);
        // every record must get *some* class
        for row in 0..d.n_rows() {
            let c = model.classify(&d, row);
            assert!((c as usize) < d.n_classes());
        }
    }

    #[test]
    fn confidence_is_probabilistic() {
        let d = band_data(600);
        let model = C45Learner::default().fit_rules(&d);
        for row in 0..d.n_rows() {
            let c = model.confidence(&d, row);
            assert!((0.0..=1.0).contains(&c));
        }
    }

    #[test]
    fn describe_renders_groups() {
        let d = band_data(600);
        let model = C45Learner::default().fit_rules(&d);
        let s = model.describe(d.schema());
        assert!(s.contains("C4.5rules model"));
        assert!(s.contains("class "));
    }

    #[test]
    fn serde_round_trips_both_models() {
        let d = band_data(300);
        let target = d.class_code("pos").unwrap();
        let tree = C45Learner::default().fit_tree(&d);
        let back: C45TreeModel =
            serde_json::from_str(&serde_json::to_string(&tree).unwrap()).unwrap();
        let rules = C45Learner::default().fit_rules(&d);
        let back_r: C45RulesModel =
            serde_json::from_str(&serde_json::to_string(&rules).unwrap()).unwrap();
        for row in 0..d.n_rows() {
            assert_eq!(back.classify(&d, row), tree.classify(&d, row));
            assert_eq!(back_r.classify(&d, row), rules.classify(&d, row));
        }
        let _ = target;
    }
}
