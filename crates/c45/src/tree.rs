//! Decision-tree construction and traversal.

use crate::params::C45Params;
use crate::split::{class_weights, find_best_split, SplitKind};
use pnr_data::Dataset;
use serde::{Deserialize, Serialize};

/// A tree node. Every node keeps its training class distribution, which
/// pruning and probability estimates use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Node {
    /// A terminal node predicting the majority class of `dist`.
    Leaf {
        /// Weighted class distribution of the training rows that reached
        /// this node.
        dist: Vec<f64>,
    },
    /// A multiway split over a categorical attribute; `children[code]` is
    /// the branch for dictionary code `code`. A branch that received no
    /// training rows is a leaf with the parent's distribution.
    CatSplit {
        /// Attribute index.
        attr: usize,
        /// One child per dictionary code.
        children: Vec<Node>,
        /// Distribution at the split node itself.
        dist: Vec<f64>,
    },
    /// A binary split `A ≤ threshold` / `A > threshold`.
    NumSplit {
        /// Attribute index.
        attr: usize,
        /// Split threshold.
        threshold: f64,
        /// Branch for `A ≤ threshold`.
        left: Box<Node>,
        /// Branch for `A > threshold`.
        right: Box<Node>,
        /// Distribution at the split node itself.
        dist: Vec<f64>,
    },
}

impl Node {
    /// The node's training class distribution.
    pub fn dist(&self) -> &[f64] {
        match self {
            Node::Leaf { dist } | Node::CatSplit { dist, .. } | Node::NumSplit { dist, .. } => dist,
        }
    }

    /// Majority class of the node's distribution (lowest code wins ties).
    pub fn majority(&self) -> u32 {
        majority_of(self.dist())
    }

    /// Number of leaves under (and including) this node.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::CatSplit { children, .. } => children.iter().map(Node::n_leaves).sum::<usize>(),
            Node::NumSplit { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }

    /// Depth of the subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::CatSplit { children, .. } => {
                1 + children.iter().map(Node::depth).max().unwrap_or(0)
            }
            Node::NumSplit { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// The leaf distribution a record descends to.
    pub fn classify_dist<'a>(&'a self, data: &Dataset, row: usize) -> &'a [f64] {
        match self {
            Node::Leaf { dist } => dist,
            Node::CatSplit {
                attr,
                children,
                dist,
            } => {
                let code = data.cat(*attr, row) as usize;
                match children.get(code) {
                    Some(child) => child.classify_dist(data, row),
                    // unseen categorical code: fall back to this node
                    None => dist,
                }
            }
            Node::NumSplit {
                attr,
                threshold,
                left,
                right,
                ..
            } => {
                if data.num(*attr, row) <= *threshold {
                    left.classify_dist(data, row)
                } else {
                    right.classify_dist(data, row)
                }
            }
        }
    }
}

/// Majority class of a weighted distribution.
pub fn majority_of(dist: &[f64]) -> u32 {
    let mut best = 0usize;
    for (i, &w) in dist.iter().enumerate() {
        if w > dist[best] {
            best = i;
        }
    }
    pnr_data::index::to_u32(best, "class code")
}

/// A complete decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    /// The root node.
    pub root: Node,
    /// Number of classes in the training schema.
    pub n_classes: usize,
}

impl Tree {
    /// Predicted class of `row`.
    pub fn classify(&self, data: &Dataset, row: usize) -> u32 {
        majority_of(self.root.classify_dist(data, row))
    }

    /// Total number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.root.n_leaves()
    }
}

impl Tree {
    /// Multi-line indented rendering with schema-resolved names and leaf
    /// class distributions.
    pub fn render(&self, schema: &pnr_data::Schema) -> String {
        let mut out = String::new();
        render_node(&self.root, schema, 0, &mut out);
        out
    }
}

fn render_node(node: &Node, schema: &pnr_data::Schema, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match node {
        Node::Leaf { dist } => {
            let total = pnr_data::ordered_sum(dist.iter().copied());
            out.push_str(&format!(
                "{pad}-> {} ({:.0}/{:.0})\n",
                schema.classes.name(majority_of(dist)),
                dist.iter().fold(0.0f64, |a, &b| a.max(b)),
                total
            ));
        }
        Node::CatSplit { attr, children, .. } => {
            for (code, child) in children.iter().enumerate() {
                out.push_str(&format!(
                    "{pad}{} = {}\n",
                    schema.attr(*attr).name,
                    schema
                        .attr(*attr)
                        .dict
                        .name(pnr_data::index::to_u32(code, "dictionary code"))
                ));
                render_node(child, schema, indent + 1, out);
            }
        }
        Node::NumSplit {
            attr,
            threshold,
            left,
            right,
            ..
        } => {
            out.push_str(&format!(
                "{pad}{} <= {threshold}\n",
                schema.attr(*attr).name
            ));
            render_node(left, schema, indent + 1, out);
            out.push_str(&format!("{pad}{} > {threshold}\n", schema.attr(*attr).name));
            render_node(right, schema, indent + 1, out);
        }
    }
}

/// Builds an unpruned tree over every row of `data`.
pub fn build_tree(data: &Dataset, params: &C45Params) -> Tree {
    let rows: Vec<u32> = (0..pnr_data::index::to_u32(data.n_rows(), "row count")).collect();
    let root = build_node(data, &rows, params, 1);
    Tree {
        root,
        n_classes: data.n_classes(),
    }
}

fn build_node(data: &Dataset, rows: &[u32], params: &C45Params, depth: usize) -> Node {
    let dist = class_weights(data, rows);
    let total = pnr_data::ordered_sum(dist.iter().copied());
    let pure = dist.contains(&total) || pnr_data::weights::approx::is_zero(total);
    if pure || total < 2.0 * params.min_objects || depth >= params.max_depth {
        return Node::Leaf { dist };
    }
    let Some(split) = find_best_split(data, rows, params) else {
        return Node::Leaf { dist };
    };
    match split.kind {
        SplitKind::Categorical => {
            let n_values = data.schema().attr(split.attr).dict.len();
            let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n_values];
            for &r in rows {
                buckets[data.cat(split.attr, r as usize) as usize].push(r);
            }
            let children: Vec<Node> = buckets
                .iter()
                .map(|bucket| {
                    if bucket.is_empty() {
                        // empty branch inherits the parent's distribution
                        Node::Leaf { dist: dist.clone() }
                    } else {
                        build_node(data, bucket, params, depth + 1)
                    }
                })
                .collect();
            Node::CatSplit {
                attr: split.attr,
                children,
                dist,
            }
        }
        SplitKind::Numeric { threshold } => {
            let (left_rows, right_rows): (Vec<u32>, Vec<u32>) = rows
                .iter()
                .partition(|&&r| data.num(split.attr, r as usize) <= threshold);
            let left = build_node(data, &left_rows, params, depth + 1);
            let right = build_node(data, &right_rows, params, depth + 1);
            Node::NumSplit {
                attr: split.attr,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
                dist,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, DatasetBuilder, Value};

    fn xor_like() -> Dataset {
        // class depends on x-band AND category: forces a two-level tree
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        for i in 0..200 {
            let x = (i % 10) as f64;
            let k = if (i / 10) % 2 == 0 { "p" } else { "q" };
            let class = if x < 5.0 && k == "p" { "a" } else { "b" };
            b.push_row(&[Value::num(x), Value::cat(k)], class, 1.0)
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn tree_fits_training_data() {
        let d = xor_like();
        let t = build_tree(&d, &C45Params::default());
        let correct = (0..d.n_rows())
            .filter(|&r| t.classify(&d, r) == d.label(r))
            .count();
        assert_eq!(correct, d.n_rows(), "unpruned tree must fit separable data");
        assert!(
            t.n_leaves() >= 3,
            "needs both attributes: {} leaves",
            t.n_leaves()
        );
    }

    #[test]
    fn pure_data_gives_single_leaf() {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        for i in 0..10 {
            b.push_row(&[Value::num(i as f64)], "only", 1.0).unwrap();
        }
        let d = b.finish();
        let t = build_tree(&d, &C45Params::default());
        assert_eq!(t.n_leaves(), 1);
        assert!(matches!(t.root, Node::Leaf { .. }));
    }

    #[test]
    fn depth_cap_limits_growth() {
        let d = xor_like();
        let t = build_tree(
            &d,
            &C45Params {
                max_depth: 1,
                ..Default::default()
            },
        );
        assert_eq!(t.root.depth(), 1);
    }

    #[test]
    fn majority_prefers_heavier_class() {
        assert_eq!(majority_of(&[1.0, 5.0, 3.0]), 1);
        assert_eq!(majority_of(&[2.0, 2.0]), 0, "ties go to the lower code");
    }

    #[test]
    fn classify_dist_returns_leaf_distribution() {
        let d = xor_like();
        let t = build_tree(&d, &C45Params::default());
        let dist = t.root.classify_dist(&d, 0);
        let total: f64 = dist.iter().sum();
        assert!(total > 0.0);
        // row 0 is class "a": its leaf should be pure in "a"
        assert_eq!(majority_of(dist), d.label(0));
    }

    #[test]
    fn node_statistics() {
        let d = xor_like();
        let t = build_tree(&d, &C45Params::default());
        assert!(t.root.depth() >= 2);
        assert_eq!(t.n_leaves(), t.root.n_leaves());
    }
}
