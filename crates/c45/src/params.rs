//! C4.5 parameters.

use serde::{Deserialize, Serialize};

/// Tunables of [`crate::C45Learner`]; defaults match C4.5's documented
/// recommended settings (the configuration the paper uses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct C45Params {
    /// Minimum weight each of at least two branches of a split must carry
    /// (C4.5's `-m`, default 2).
    pub min_objects: f64,
    /// Confidence factor for pessimistic error estimates (C4.5's `-c`,
    /// default 0.25).
    pub cf: f64,
    /// Depth cap (safety valve; C4.5 has none, trees on our data never get
    /// near it).
    pub max_depth: usize,
    /// Apply the Release-8 MDL penalty `log₂(distinct−1)/|D|` to the gain
    /// of continuous splits.
    pub release8_penalty: bool,
    /// Cap on the number of rules kept per class after subset selection
    /// (safety valve for degenerate stratified trees).
    pub max_rules_per_class: usize,
}

impl Default for C45Params {
    fn default() -> Self {
        C45Params {
            min_objects: 2.0,
            cf: 0.25,
            max_depth: 64,
            release8_penalty: true,
            max_rules_per_class: 256,
        }
    }
}

impl C45Params {
    /// Panics if a parameter is out of range.
    pub fn validate(&self) {
        assert!(self.min_objects > 0.0, "min_objects must be positive");
        assert!(
            self.cf > 0.0 && self.cf < 1.0,
            "cf must be in (0,1), got {}",
            self.cf
        );
        assert!(self.max_depth > 0, "max_depth must be positive");
        assert!(
            self.max_rules_per_class > 0,
            "max_rules_per_class must be positive"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        C45Params::default().validate();
    }

    #[test]
    #[should_panic(expected = "cf")]
    fn bad_cf_panics() {
        C45Params {
            cf: 0.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn serde_round_trip() {
        let p = C45Params {
            cf: 0.1,
            ..Default::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<C45Params>(&json).unwrap(), p);
    }
}
