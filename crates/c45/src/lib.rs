//! C4.5 decision trees and C4.5rules, the paper's second baseline,
//! reimplemented from Quinlan (1993) with the Release-8 continuous-split
//! penalty.
//!
//! * [`tree`] builds a multiway decision tree by gain ratio (among
//!   attributes whose gain is at least the average positive gain), with
//!   binary threshold splits on numeric attributes that pay the Release-8
//!   `log₂(N−1)/|D|` MDL penalty;
//! * [`prune`] applies pessimistic-error pruning (confidence-factor upper
//!   bounds on the training error, CF = 0.25 by default) with subtree
//!   replacement;
//! * [`rules`] converts the pruned tree into per-leaf rules, generalises
//!   each rule by greedily dropping conditions that do not raise its
//!   pessimistic error, selects a per-class subset by greedy
//!   description-length descent, ranks classes and picks a default class —
//!   the C4.5rules pipeline.
//!
//! Both the tree model (`C4.5` / the paper's `C4.5-we` rows) and the rules
//! model (`C4.5rules`) expose binary adapters implementing
//! [`pnr_rules::BinaryClassifier`] for one-vs-rest evaluation.
//!
//! # Example
//!
//! ```
//! use pnr_data::{DatasetBuilder, AttrType, Value};
//! use pnr_c45::{C45Learner, C45Params};
//!
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("x", AttrType::Numeric);
//! for i in 0..100 {
//!     let x = (i % 10) as f64;
//!     b.push_row(&[Value::num(x)], if x < 3.0 { "a" } else { "b" }, 1.0).unwrap();
//! }
//! let data = b.finish();
//! let learner = C45Learner::new(C45Params::default());
//! let tree = learner.fit_tree(&data);
//! assert_eq!(data.class_name(tree.classify(&data, 0)), "a");
//! let rules = learner.fit_rules(&data);
//! assert_eq!(data.class_name(rules.classify(&data, 0)), "a");
//! ```

pub mod model;
pub mod params;
pub mod prune;
pub mod rules;
pub mod split;
pub mod tree;

pub use model::{BinaryRulesView, BinaryTreeView, C45RulesModel, C45TreeModel, ClassRuleGroup};
pub use params::C45Params;
pub use rules::ClassRule;
pub use tree::{Node, Tree};

use pnr_data::Dataset;
use pnr_telemetry::{Span, SpanKind, TelemetrySink};
use std::sync::Arc;

/// The C4.5 learner: builds pruned trees and rule models.
#[derive(Debug, Clone)]
pub struct C45Learner {
    params: C45Params,
    sink: Arc<dyn TelemetrySink>,
}

impl Default for C45Learner {
    fn default() -> Self {
        C45Learner {
            params: C45Params::default(),
            sink: pnr_telemetry::noop(),
        }
    }
}

impl C45Learner {
    /// A learner with the given parameters.
    pub fn new(params: C45Params) -> Self {
        params.validate();
        C45Learner {
            params,
            sink: pnr_telemetry::noop(),
        }
    }

    /// Attaches a telemetry sink; each fit is wrapped in one coarse
    /// baseline-fit span. Write-only: the model is identical whatever sink
    /// is attached.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = sink;
        self
    }

    /// The learner's parameters.
    pub fn params(&self) -> &C45Params {
        &self.params
    }

    /// Builds and pessimistically prunes a decision tree.
    pub fn fit_tree(&self, data: &Dataset) -> C45TreeModel {
        let _fit_span = Span::enter(self.sink.as_ref(), SpanKind::BaselineFit, "c45_tree");
        let mut t = tree::build_tree(data, &self.params);
        prune::prune_tree(&mut t, data, &self.params);
        C45TreeModel::new(t)
    }

    /// Runs the full C4.5rules pipeline (tree → rules → generalisation →
    /// subset selection → ranking → default class).
    pub fn fit_rules(&self, data: &Dataset) -> C45RulesModel {
        let _fit_span = Span::enter(self.sink.as_ref(), SpanKind::BaselineFit, "c45_rules");
        let tree_model = self.fit_tree(data);
        rules::rules_from_tree(tree_model.tree(), data, &self.params)
    }
}
