//! Property-based tests for C4.5's sub-procedures.

use pnr_c45::prune::{added_errors, leaf_upper_error, normal_quantile};
use pnr_c45::split::entropy_of;
use pnr_c45::tree::build_tree;
use pnr_c45::{C45Learner, C45Params};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use proptest::prelude::*;

fn dataset(rows: &[(f64, usize)]) -> Dataset {
    let classes = ["a", "b", "c"];
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    for c in classes {
        b.add_class(c);
    }
    for &(x, c) in rows {
        b.push_row(&[Value::num(x)], classes[c % 3], 1.0).unwrap();
    }
    b.finish()
}

fn rows() -> impl Strategy<Value = Vec<(f64, usize)>> {
    prop::collection::vec((-30.0f64..30.0, 0usize..3), 6..150)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn entropy_bounds(dist in prop::collection::vec(0.0f64..100.0, 1..6)) {
        let h = entropy_of(&dist);
        let k = dist.iter().filter(|&&w| w > 0.0).count().max(1);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= (k as f64).log2() + 1e-9, "H {h} over log2({k})");
    }

    #[test]
    fn normal_quantile_is_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
        let (lo, hi) = if p1 < p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(normal_quantile(lo) <= normal_quantile(hi) + 1e-12);
    }

    #[test]
    fn added_errors_are_bounded(n in 1.0f64..10_000.0, frac in 0.0f64..1.0, cf in 0.05f64..0.5) {
        let e = (n * frac).floor();
        let add = added_errors(n, e, cf);
        prop_assert!(add >= 0.0);
        prop_assert!(e + add <= n + 1e-6, "upper error {} exceeds n {n}", e + add);
    }

    #[test]
    fn leaf_upper_error_at_least_observed(dist in prop::collection::vec(0.0f64..500.0, 2..4)) {
        let n: f64 = dist.iter().sum();
        let e = n - dist.iter().fold(0.0f64, |a, &b| a.max(b));
        prop_assert!(leaf_upper_error(&dist, 0.25) + 1e-9 >= e);
    }

    #[test]
    fn pruning_never_grows_the_tree(data_rows in rows()) {
        let d = dataset(&data_rows);
        let params = C45Params::default();
        let unpruned = build_tree(&d, &params);
        let pruned = C45Learner::new(params).fit_tree(&d);
        prop_assert!(pruned.tree().n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn tree_predictions_are_valid_classes(data_rows in rows()) {
        let d = dataset(&data_rows);
        let model = C45Learner::default().fit_tree(&d);
        for row in 0..d.n_rows() {
            prop_assert!((model.classify(&d, row) as usize) < d.n_classes());
            let p: f64 =
                (0..d.n_classes() as u32).map(|c| model.class_prob(&d, row, c)).sum();
            prop_assert!((p - 1.0).abs() < 1e-9, "class probs sum to {p}");
        }
    }

    #[test]
    fn rules_model_covers_every_record(data_rows in rows()) {
        let d = dataset(&data_rows);
        let model = C45Learner::default().fit_rules(&d);
        for row in 0..d.n_rows() {
            prop_assert!((model.classify(&d, row) as usize) < d.n_classes());
            let c = model.confidence(&d, row);
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
