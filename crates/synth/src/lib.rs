//! Synthetic dataset models from the PNrule paper (section 3.2).
//!
//! Three model families, each exercising a different failure mode of
//! classical sequential covering on rare classes:
//!
//! * [`numeric`] — the numerical-only peaks model behind `nsyn1..nsyn6`
//!   (Table 1, Figure 1, Table 2): every subclass is distinguished by
//!   disjoint, uniformly spaced, identical peaks in the distribution of a
//!   single attribute, and is uniform everywhere else;
//! * [`categorical`] — the word-conjunction model behind `coa1..coa6` and
//!   `coad1..coad4` (Figure 2, Table 3): signatures are conjunctions of
//!   word sets over a distinct pair of attributes per subclass;
//! * [`general`] — the mixed `syngen` model (Figure 3, Tables 4-5):
//!   conjunctive numeric signatures shared between target and non-target
//!   subclasses, disjunctive numeric signatures, and categorical word
//!   signatures, together "fairly general and complex to represent
//!   real-life situations".
//!
//! All generators are deterministic in their seed, pre-register class names
//! and categorical vocabularies (so independently generated train/test sets
//! share dictionary codes), and label records with just two classes: `"C"`
//! (target) and `"NC"` (rest).
//!
//! # Example
//!
//! ```
//! use pnr_synth::{numeric::NumericModelConfig, SynthScale};
//!
//! let cfg = NumericModelConfig::nsyn(3);
//! let scale = SynthScale { n_records: 5_000, target_frac: 0.003 };
//! let data = pnr_synth::numeric::generate(&cfg, &scale, 42);
//! assert_eq!(data.n_rows(), 5_000);
//! let c = data.class_code("C").unwrap();
//! assert_eq!(data.class_counts()[c as usize], 15);
//! ```

pub mod categorical;
pub mod general;
pub mod numeric;
pub mod peaks;

use serde::{Deserialize, Serialize};

/// Name of the target class in every generated dataset.
pub const TARGET_CLASS: &str = "C";
/// Name of the non-target class in every generated dataset.
pub const NON_TARGET_CLASS: &str = "NC";

/// Size and rarity of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthScale {
    /// Total number of records.
    pub n_records: usize,
    /// Fraction of records labelled with the target class.
    pub target_frac: f64,
}

impl SynthScale {
    /// The paper's training scale: 500 000 records, 0.3% target (1 500
    /// target examples).
    pub fn paper_train() -> Self {
        SynthScale {
            n_records: 500_000,
            target_frac: 0.003,
        }
    }

    /// The paper's test scale: 250 000 records, 750 of them targets.
    pub fn paper_test() -> Self {
        SynthScale {
            n_records: 250_000,
            target_frac: 0.003,
        }
    }

    /// A proportionally shrunk scale (for quick runs); `factor` 1.0 is the
    /// original size.
    pub fn scaled_by(&self, factor: f64) -> Self {
        assert!(factor > 0.0);
        SynthScale {
            n_records: ((self.n_records as f64) * factor).round().max(1.0) as usize,
            target_frac: self.target_frac,
        }
    }

    /// Number of target records this scale yields.
    pub fn n_target(&self) -> usize {
        ((self.n_records as f64) * self.target_frac).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scales_match_section_3() {
        let tr = SynthScale::paper_train();
        assert_eq!(tr.n_records, 500_000);
        assert_eq!(tr.n_target(), 1_500);
        let te = SynthScale::paper_test();
        assert_eq!(te.n_records, 250_000);
        assert_eq!(te.n_target(), 750);
    }

    #[test]
    fn scaling_preserves_rarity() {
        let s = SynthScale::paper_train().scaled_by(0.1);
        assert_eq!(s.n_records, 50_000);
        assert_eq!(s.target_frac, 0.003);
        assert_eq!(s.n_target(), 150);
    }
}
