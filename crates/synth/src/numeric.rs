//! The numerical-only model (`nsyn1..nsyn6`, section 3.2.1).
//!
//! Every subclass — one or more target subclasses, two or more non-target
//! subclasses — is distinguished by disjoint, uniformly spaced, identical
//! peaks in its distribution over a **single attribute of its own**, and is
//! uniformly distributed over every other attribute. Full coverage of the
//! target's tiny peaks inherently captures many false positives (uniform
//! non-target mass under the peaks); removing them requires learning the
//! non-target subclasses' peak regions on the *other* attributes — the
//! splintered-false-positive trap for per-rule refinement.

use crate::peaks::{layout_peaks, Peak, PeakShape};
use crate::{SynthScale, NON_TARGET_CLASS, TARGET_CLASS};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the numerical-only model (Table 1's columns).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumericModelConfig {
    /// Number of target subclasses (`tc`).
    pub tc: usize,
    /// Signatures (peaks) per target subclass (`nsptc`).
    pub nsptc: usize,
    /// Total width of a target subclass's peaks (`tr`).
    pub tr: f64,
    /// Number of non-target subclasses (`ntc`).
    pub ntc: usize,
    /// Signatures per non-target subclass (`nspntc`).
    pub nspntc: usize,
    /// Total width of a non-target subclass's peaks (`nr`).
    pub nr: f64,
    /// Signature distribution shape (`d-shape`).
    pub shape: PeakShape,
    /// Attribute domain `[0, domain)`; the paper's figures use a domain of
    /// roughly this size.
    pub domain: f64,
}

impl NumericModelConfig {
    /// The `nsyn1..nsyn6` presets of Table 1.
    ///
    /// # Panics
    /// Panics if `index` is not in `1..=6`.
    pub fn nsyn(index: usize) -> Self {
        let (nsptc, ntc, nspntc) = match index {
            1 => (1, 2, 3),
            2 => (4, 2, 3),
            3 => (4, 2, 4),
            4 => (4, 2, 5),
            5 => (4, 3, 4),
            6 => (4, 3, 5),
            _ => panic!("nsyn index must be 1..=6, got {index}"),
        };
        NumericModelConfig {
            tc: 1,
            nsptc,
            tr: 0.2,
            ntc,
            nspntc,
            nr: 0.2,
            shape: PeakShape::Triangular,
            domain: 50.0,
        }
    }

    /// The same preset with peak widths overridden — the `tr`/`nr`
    /// variations of Figure 1 and Table 2.
    pub fn with_widths(mut self, tr: f64, nr: f64) -> Self {
        self.tr = tr;
        self.nr = nr;
        self
    }

    /// Total number of attributes: one per subclass.
    pub fn n_attrs(&self) -> usize {
        self.tc + self.ntc
    }

    /// Peak layout of target subclass `s` (over attribute `s`).
    pub fn target_peaks(&self, s: usize) -> Vec<Peak> {
        assert!(s < self.tc);
        layout_peaks(self.nsptc, self.tr, self.domain)
    }

    /// Peak layout of non-target subclass `j` (over attribute `tc + j`).
    pub fn non_target_peaks(&self, j: usize) -> Vec<Peak> {
        assert!(j < self.ntc);
        layout_peaks(self.nspntc, self.nr, self.domain)
    }
}

/// Generates a dataset from the model. Deterministic in `seed`.
///
/// Target records are divided equally among target subclasses and, within a
/// subclass, equally among its signatures; likewise for non-target records.
pub fn generate(cfg: &NumericModelConfig, scale: &SynthScale, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_target = scale.n_target();
    let n_non_target = scale.n_records - n_target;

    let mut b = DatasetBuilder::new();
    for a in 0..cfg.n_attrs() {
        b.add_attribute(format!("a{a}"), AttrType::Numeric);
    }
    b.add_class(TARGET_CLASS);
    b.add_class(NON_TARGET_CLASS);
    b.reserve(scale.n_records);

    let target_peaks: Vec<Vec<Peak>> = (0..cfg.tc).map(|s| cfg.target_peaks(s)).collect();
    let non_target_peaks: Vec<Vec<Peak>> = (0..cfg.ntc).map(|j| cfg.non_target_peaks(j)).collect();

    let mut values = vec![0.0f64; cfg.n_attrs()];
    let mut row_buf: Vec<Value<'_>> = Vec::with_capacity(cfg.n_attrs());

    for i in 0..n_target {
        let s = i % cfg.tc; // subclass round-robin keeps the division exact
        let sig = (i / cfg.tc) % cfg.nsptc;
        for (a, v) in values.iter_mut().enumerate() {
            *v = if a == s {
                target_peaks[s][sig].sample(cfg.shape, &mut rng)
            } else {
                rng.gen::<f64>() * cfg.domain
            };
        }
        row_buf.clear();
        row_buf.extend(values.iter().map(|&v| Value::Num(v)));
        b.push_row(&row_buf, TARGET_CLASS, 1.0)
            .expect("schema fixed");
    }
    for i in 0..n_non_target {
        let j = i % cfg.ntc;
        let sig = (i / cfg.ntc) % cfg.nspntc;
        let attr = cfg.tc + j;
        for (a, v) in values.iter_mut().enumerate() {
            *v = if a == attr {
                non_target_peaks[j][sig].sample(cfg.shape, &mut rng)
            } else {
                rng.gen::<f64>() * cfg.domain
            };
        }
        row_buf.clear();
        row_buf.extend(values.iter().map(|&v| Value::Num(v)));
        b.push_row(&row_buf, NON_TARGET_CLASS, 1.0)
            .expect("schema fixed");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scale() -> SynthScale {
        SynthScale {
            n_records: 10_000,
            target_frac: 0.01,
        }
    }

    #[test]
    fn presets_match_table_1() {
        let n3 = NumericModelConfig::nsyn(3);
        assert_eq!((n3.tc, n3.nsptc, n3.ntc, n3.nspntc), (1, 4, 2, 4));
        assert_eq!(n3.n_attrs(), 3);
        let n6 = NumericModelConfig::nsyn(6);
        assert_eq!((n6.ntc, n6.nspntc), (3, 5));
        assert_eq!(n6.n_attrs(), 4);
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn bad_preset_panics() {
        NumericModelConfig::nsyn(7);
    }

    #[test]
    fn class_proportions_are_exact() {
        let d = generate(&NumericModelConfig::nsyn(2), &small_scale(), 1);
        assert_eq!(d.n_rows(), 10_000);
        let c = d.class_code(TARGET_CLASS).unwrap() as usize;
        assert_eq!(d.class_counts()[c], 100);
    }

    #[test]
    fn target_records_sit_in_their_peaks() {
        let cfg = NumericModelConfig::nsyn(3);
        let d = generate(&cfg, &small_scale(), 2);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let peaks = cfg.target_peaks(0);
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                let x = d.num(0, row);
                assert!(
                    peaks.iter().any(|p| p.contains(x)),
                    "target row {row} value {x} outside every peak"
                );
            }
        }
    }

    #[test]
    fn non_target_records_sit_in_their_subclass_peaks() {
        let cfg = NumericModelConfig::nsyn(1);
        let d = generate(&cfg, &small_scale(), 3);
        let nc = d.class_code(NON_TARGET_CLASS).unwrap();
        let peaks0 = cfg.non_target_peaks(0);
        let peaks1 = cfg.non_target_peaks(1);
        for row in 0..d.n_rows() {
            if d.label(row) == nc {
                let in0 = peaks0.iter().any(|p| p.contains(d.num(1, row)));
                let in1 = peaks1.iter().any(|p| p.contains(d.num(2, row)));
                assert!(
                    in0 || in1,
                    "non-target row {row} belongs to no subclass signature"
                );
            }
        }
    }

    #[test]
    fn non_distinguishing_attributes_are_roughly_uniform() {
        let cfg = NumericModelConfig::nsyn(1);
        let d = generate(
            &cfg,
            &SynthScale {
                n_records: 20_000,
                target_frac: 0.5,
            },
            4,
        );
        let c = d.class_code(TARGET_CLASS).unwrap();
        // attribute 1 distinguishes NC1; target rows should be uniform there
        let mut counts = [0usize; 5];
        let mut total = 0usize;
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                let x = d.num(1, row);
                counts[((x / cfg.domain * 5.0) as usize).min(4)] += 1;
                total += 1;
            }
        }
        for (i, &cnt) in counts.iter().enumerate() {
            let frac = cnt as f64 / total as f64;
            assert!((frac - 0.2).abs() < 0.03, "bucket {i} fraction {frac}");
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let cfg = NumericModelConfig::nsyn(2);
        let s = SynthScale {
            n_records: 1_000,
            target_frac: 0.01,
        };
        let d1 = generate(&cfg, &s, 7);
        let d2 = generate(&cfg, &s, 7);
        for row in 0..d1.n_rows() {
            assert_eq!(d1.num(0, row), d2.num(0, row));
        }
        let d3 = generate(&cfg, &s, 8);
        let diff = (0..d1.n_rows()).any(|r| d1.num(0, r) != d3.num(0, r));
        assert!(diff, "different seed should change the data");
    }

    #[test]
    fn width_override_applies() {
        let cfg = NumericModelConfig::nsyn(3).with_widths(4.0, 2.0);
        assert_eq!(cfg.tr, 4.0);
        assert_eq!(cfg.nr, 2.0);
        let p = cfg.target_peaks(0);
        assert!((p[0].width - 1.0).abs() < 1e-12);
    }
}
