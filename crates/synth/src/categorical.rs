//! The categorical-only model (`coa*`, `coad*`; section 3.2.2, Figure 2).
//!
//! Instead of peaks over a continuous attribute, each signature is a
//! conjunction of words over a **distinct pair of attributes** owned by the
//! subclass: signature `k` matches when the pair takes one of the
//! signature's `nwps` reserved word *combinations* (diagonal pairs
//! `(w, w)`), out of the `vocab²` combinations the pair can take. Records
//! are uniform over every other attribute's vocabulary — including the
//! reserved words, which is what plants false positives.
//!
//! Calibration note: Table 3's `nwps = 2/400` is read as *2 combinations of
//! the 400 a 20-word-per-attribute pair offers* (and `2/100` as 2 of 10²).
//! This reading reproduces the paper's arithmetic exactly: on `coa1` a
//! learner that covers just the target's 6 reserved combinations captures
//! `250k·6/400 = 3750` false positives against 750 targets — precision
//! 16.7%, the paper's published RIPPER precision.

use crate::{SynthScale, NON_TARGET_CLASS, TARGET_CLASS};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The signature structure of one class (Figure 2's `na`, `nspa`, `nwps`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatClassSpec {
    /// Number of subclasses (`na`).
    pub na: usize,
    /// Signatures per subclass (`nspa`).
    pub nspa: usize,
    /// Reserved word combinations per signature (`nwps`; the paper's tables
    /// use 2). Combination `t` of signature `k` is the diagonal pair
    /// `(w, w)` with `w = k·nwps + t`.
    pub combos_per_sig: usize,
    /// Vocabulary size of each attribute this class owns; the pair offers
    /// `vocab²` combinations (the `/400` or `/100` denominator in Table 3).
    pub vocab: usize,
}

impl CatClassSpec {
    /// Word combinations per signature (`nwps`).
    pub fn nwps(&self) -> usize {
        self.combos_per_sig
    }

    fn validate(&self) {
        assert!(self.na > 0 && self.nspa > 0 && self.combos_per_sig > 0);
        assert!(
            self.nspa * self.combos_per_sig <= self.vocab,
            "vocabulary of {} too small for {} signatures × {} combinations",
            self.vocab,
            self.nspa,
            self.combos_per_sig
        );
    }
}

/// Parameters of the categorical-only model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoricalModelConfig {
    /// Target-class structure.
    pub target: CatClassSpec,
    /// Non-target-class structure.
    pub non_target: CatClassSpec,
}

impl CategoricalModelConfig {
    /// The `coa1..coa6` presets of Table 3 (category A and B datasets).
    ///
    /// # Panics
    /// Panics if `index` is not in `1..=6`.
    pub fn coa(index: usize) -> Self {
        let (t_nspa, nt_na, nt_nspa) = match index {
            1 => (3, 2, 3),
            2 => (3, 3, 3),
            3 => (3, 4, 3),
            4 => (4, 2, 4),
            5 => (4, 3, 4),
            6 => (4, 4, 4),
            _ => panic!("coa index must be 1..=6, got {index}"),
        };
        CategoricalModelConfig {
            target: CatClassSpec {
                na: 1,
                nspa: t_nspa,
                combos_per_sig: 2,
                vocab: 20,
            },
            non_target: CatClassSpec {
                na: nt_na,
                nspa: nt_nspa,
                combos_per_sig: 2,
                vocab: 10,
            },
        }
    }

    /// The `coad1..coad4` presets of Table 3 (category C datasets, varying
    /// which side has the dense vocabulary).
    ///
    /// # Panics
    /// Panics if `index` is not in `1..=4`.
    pub fn coad(index: usize) -> Self {
        let (t_vocab, nt_vocab) = match index {
            1 => (20, 20),
            2 => (20, 10),
            3 => (10, 20),
            4 => (10, 10),
            _ => panic!("coad index must be 1..=4, got {index}"),
        };
        CategoricalModelConfig {
            target: CatClassSpec {
                na: 2,
                nspa: 4,
                combos_per_sig: 2,
                vocab: t_vocab,
            },
            non_target: CatClassSpec {
                na: 4,
                nspa: 4,
                combos_per_sig: 2,
                vocab: nt_vocab,
            },
        }
    }

    /// Total attributes: one distinct pair per subclass.
    pub fn n_attrs(&self) -> usize {
        2 * (self.target.na + self.non_target.na)
    }

    /// The attribute pair owned by target subclass `s`.
    pub fn target_pair(&self, s: usize) -> (usize, usize) {
        assert!(s < self.target.na);
        (2 * s, 2 * s + 1)
    }

    /// The attribute pair owned by non-target subclass `j`.
    pub fn non_target_pair(&self, j: usize) -> (usize, usize) {
        assert!(j < self.non_target.na);
        let base = 2 * self.target.na;
        (base + 2 * j, base + 2 * j + 1)
    }

    /// Vocabulary size of attribute `attr` (set by its owning class).
    pub fn vocab_of(&self, attr: usize) -> usize {
        if attr < 2 * self.target.na {
            self.target.vocab
        } else {
            self.non_target.vocab
        }
    }

    /// The reserved word indices of signature `sig` (the same word appears
    /// on both attributes of the pair — diagonal combinations): signature
    /// words occupy the front of the vocabulary, `combos_per_sig` per
    /// signature.
    pub fn signature_words(&self, spec: &CatClassSpec, sig: usize) -> std::ops::Range<usize> {
        let w = spec.combos_per_sig;
        sig * w..(sig + 1) * w
    }
}

/// Generates a dataset from the model. Deterministic in `seed`. All word
/// vocabularies are pre-registered so train/test dictionaries agree.
pub fn generate(cfg: &CategoricalModelConfig, scale: &SynthScale, seed: u64) -> Dataset {
    cfg.target.validate();
    cfg.non_target.validate();
    let mut rng = StdRng::seed_from_u64(seed);
    let n_target = scale.n_target();
    let n_non_target = scale.n_records - n_target;

    let mut b = DatasetBuilder::new();
    for a in 0..cfg.n_attrs() {
        b.add_attribute(format!("a{a}"), AttrType::Categorical);
    }
    // Pre-register every word of every attribute; "w{i}" naming.
    let word_names: Vec<String> = (0..cfg.vocab_of(0).max(cfg.vocab_of(cfg.n_attrs() - 1)))
        .map(|i| format!("w{i}"))
        .collect();
    for a in 0..cfg.n_attrs() {
        for name in word_names.iter().take(cfg.vocab_of(a)) {
            b.add_cat_value(a, name);
        }
    }
    b.add_class(TARGET_CLASS);
    b.add_class(NON_TARGET_CLASS);
    b.reserve(scale.n_records);

    let n_attrs = cfg.n_attrs();
    let mut word_idx = vec![0usize; n_attrs];
    let mut emit = |b: &mut DatasetBuilder,
                    rng: &mut StdRng,
                    class: &str,
                    pair: (usize, usize),
                    spec: &CatClassSpec,
                    sig: usize| {
        // pick the signature's combination once: both pair attributes carry
        // the SAME word (diagonal combination)
        let words = cfg.signature_words(spec, sig);
        let sig_word = words.start + rng.gen_range(0..spec.combos_per_sig);
        for (a, wi) in word_idx.iter_mut().enumerate() {
            *wi = if a == pair.0 || a == pair.1 {
                sig_word
            } else {
                rng.gen_range(0..cfg.vocab_of(a))
            };
        }
        let row: Vec<Value<'_>> = word_idx
            .iter()
            .map(|&wi| Value::Cat(&word_names[wi]))
            .collect();
        b.push_row(&row, class, 1.0).expect("schema fixed");
    };

    for i in 0..n_target {
        let s = i % cfg.target.na;
        let sig = (i / cfg.target.na) % cfg.target.nspa;
        emit(
            &mut b,
            &mut rng,
            TARGET_CLASS,
            cfg.target_pair(s),
            &cfg.target,
            sig,
        );
    }
    for i in 0..n_non_target {
        let j = i % cfg.non_target.na;
        let sig = (i / cfg.non_target.na) % cfg.non_target.nspa;
        emit(
            &mut b,
            &mut rng,
            NON_TARGET_CLASS,
            cfg.non_target_pair(j),
            &cfg.non_target,
            sig,
        );
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthScale {
        SynthScale {
            n_records: 5_000,
            target_frac: 0.01,
        }
    }

    #[test]
    fn presets_match_table_3() {
        let c3 = CategoricalModelConfig::coa(3);
        assert_eq!(c3.target.nspa, 3);
        assert_eq!(c3.non_target.na, 4);
        assert_eq!(c3.n_attrs(), 10);
        let d2 = CategoricalModelConfig::coad(2);
        assert_eq!(d2.target.na, 2);
        assert_eq!((d2.target.vocab, d2.non_target.vocab), (20, 10));
    }

    #[test]
    #[should_panic(expected = "coa index")]
    fn bad_coa_panics() {
        CategoricalModelConfig::coa(0);
    }

    #[test]
    fn nwps_is_the_combination_count() {
        let spec = CatClassSpec {
            na: 1,
            nspa: 2,
            combos_per_sig: 2,
            vocab: 20,
        };
        assert_eq!(spec.nwps(), 2);
    }

    #[test]
    fn class_proportions_exact() {
        let d = generate(&CategoricalModelConfig::coa(1), &small(), 1);
        let c = d.class_code(TARGET_CLASS).unwrap() as usize;
        assert_eq!(d.class_counts()[c], 50);
        assert_eq!(d.n_rows(), 5_000);
    }

    #[test]
    fn target_records_carry_diagonal_signature_combinations() {
        let cfg = CategoricalModelConfig::coa(1);
        let d = generate(&cfg, &small(), 2);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let (a0, a1) = cfg.target_pair(0);
        let max_sig_word = cfg.target.nspa * cfg.target.combos_per_sig;
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                // signature words live at the front of the vocabulary
                let w0: usize = d
                    .cat_name(a0, row)
                    .strip_prefix('w')
                    .unwrap()
                    .parse()
                    .unwrap();
                let w1: usize = d
                    .cat_name(a1, row)
                    .strip_prefix('w')
                    .unwrap()
                    .parse()
                    .unwrap();
                assert!(
                    w0 < max_sig_word,
                    "row {row} word {w0} not a signature word"
                );
                assert_eq!(
                    w0, w1,
                    "diagonal combination: both attributes carry the same word"
                );
            }
        }
    }

    #[test]
    fn dictionaries_agree_across_seeds() {
        let cfg = CategoricalModelConfig::coa(2);
        let train = generate(&cfg, &small(), 1);
        let test = generate(&cfg, &small(), 99);
        for a in 0..cfg.n_attrs() {
            assert_eq!(
                train.schema().attr(a).dict.code("w7"),
                test.schema().attr(a).dict.code("w7"),
                "attribute {a} dictionaries diverge"
            );
        }
    }

    #[test]
    fn vocab_respects_owner_class() {
        let cfg = CategoricalModelConfig::coa(1); // target 20 words, non-target 10
        let d = generate(&cfg, &small(), 3);
        assert_eq!(d.schema().attr(0).dict.len(), 20);
        assert_eq!(d.schema().attr(cfg.n_attrs() - 1).dict.len(), 10);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn vocabulary_must_fit_signatures() {
        let bad = CatClassSpec {
            na: 1,
            nspa: 100,
            combos_per_sig: 2,
            vocab: 100,
        };
        let cfg = CategoricalModelConfig {
            target: bad,
            non_target: bad,
        };
        generate(&cfg, &small(), 0);
    }

    #[test]
    fn determinism_in_seed() {
        let cfg = CategoricalModelConfig::coa(1);
        let d1 = generate(&cfg, &small(), 5);
        let d2 = generate(&cfg, &small(), 5);
        for row in (0..d1.n_rows()).step_by(97) {
            assert_eq!(d1.cat(0, row), d2.cat(0, row));
        }
    }
}
