//! The general mixed model `syngen` (section 3.2.3, Figure 3).
//!
//! Eight attributes — four numeric, four categorical — and three subclasses
//! per class, each exercising a different signature shape:
//!
//! * **C1 / NC1** — *conjunctive* numeric signatures: a disjunction of two
//!   conjunctions of peaks over the **same two attributes** (`n0`, `n1`),
//!   shared by target and non-target (the figure's left two graphs);
//! * **C2 / NC2** — *disjunctive* numeric signatures: each record carries a
//!   peak on `n2` **or** `n3` (the right two graphs);
//! * **C3 / NC3** — categorical word-pair signatures on distinct attribute
//!   pairs (`c0,c1` and `c2,c3`), with C3 `nspa = 2` and NC3 `nspa = 4`,
//!   `nwps = 2` word combinations each.
//!
//! Every subclass is uniform over all attributes it does not own.

use crate::peaks::{Peak, PeakShape};
use crate::{SynthScale, NON_TARGET_CLASS, TARGET_CLASS};
use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the `syngen` model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneralModelConfig {
    /// Total width of each target subclass's peaks per attribute (`tr`).
    pub tr: f64,
    /// Total width of each non-target subclass's peaks per attribute (`nr`).
    pub nr: f64,
    /// Peak shape.
    pub shape: PeakShape,
    /// Numeric attribute domain `[0, domain)`.
    pub domain: f64,
    /// Vocabulary size of each categorical attribute.
    pub vocab: usize,
}

impl Default for GeneralModelConfig {
    fn default() -> Self {
        GeneralModelConfig {
            tr: 0.2,
            nr: 0.2,
            shape: PeakShape::Triangular,
            domain: 50.0,
            vocab: 50,
        }
    }
}

/// Signature words per categorical signature (`nwps = 2` diagonal pairs).
const WORDS_PER_SIG: usize = 2;
/// C3 signatures.
const C3_NSPA: usize = 2;
/// NC3 signatures.
const NC3_NSPA: usize = 4;

impl GeneralModelConfig {
    /// The Figure-1-style width override used by Table 4's grid.
    pub fn with_widths(mut self, tr: f64, nr: f64) -> Self {
        self.tr = tr;
        self.nr = nr;
        self
    }

    fn peaks_at(&self, centers: &[f64], total_width: f64) -> Vec<Peak> {
        let width = total_width / centers.len() as f64;
        centers
            .iter()
            .map(|&c| Peak {
                lo: c * self.domain - width / 2.0,
                width,
            })
            .collect()
    }

    /// C1's two conjunction signatures: `(n0 peaks, n1 peaks)` indexed by
    /// signature.
    pub fn c1_peaks(&self) -> (Vec<Peak>, Vec<Peak>) {
        (
            self.peaks_at(&[0.35, 0.85], self.tr),
            self.peaks_at(&[0.35, 0.85], self.tr),
        )
    }

    /// NC1's two conjunction signatures on the same attributes, at
    /// different locations.
    pub fn nc1_peaks(&self) -> (Vec<Peak>, Vec<Peak>) {
        (
            self.peaks_at(&[0.15, 0.6], self.nr),
            self.peaks_at(&[0.15, 0.6], self.nr),
        )
    }

    /// C2's disjunctive peaks: two on `n2`, two on `n3`.
    pub fn c2_peaks(&self) -> (Vec<Peak>, Vec<Peak>) {
        (
            self.peaks_at(&[0.3, 0.8], self.tr),
            self.peaks_at(&[0.3, 0.8], self.tr),
        )
    }

    /// NC2's disjunctive peaks.
    pub fn nc2_peaks(&self) -> (Vec<Peak>, Vec<Peak>) {
        (
            self.peaks_at(&[0.1, 0.55], self.nr),
            self.peaks_at(&[0.1, 0.55], self.nr),
        )
    }
}

/// Attribute layout: numeric `n0..n3` at indexes 0..4, categorical
/// `c0..c3` at indexes 4..8.
pub const N_NUMERIC: usize = 4;
/// Total attribute count.
pub const N_ATTRS: usize = 8;

/// Generates a `syngen` dataset. Deterministic in `seed`.
pub fn generate(cfg: &GeneralModelConfig, scale: &SynthScale, seed: u64) -> Dataset {
    assert!(
        cfg.vocab >= NC3_NSPA * WORDS_PER_SIG,
        "vocabulary too small"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let n_target = scale.n_target();
    let n_non_target = scale.n_records - n_target;

    let mut b = DatasetBuilder::new();
    for a in 0..N_NUMERIC {
        b.add_attribute(format!("n{a}"), AttrType::Numeric);
    }
    for a in 0..N_ATTRS - N_NUMERIC {
        b.add_attribute(format!("c{a}"), AttrType::Categorical);
    }
    let word_names: Vec<String> = (0..cfg.vocab).map(|i| format!("w{i}")).collect();
    for a in N_NUMERIC..N_ATTRS {
        for w in &word_names {
            b.add_cat_value(a, w);
        }
    }
    b.add_class(TARGET_CLASS);
    b.add_class(NON_TARGET_CLASS);
    b.reserve(scale.n_records);

    let c1 = cfg.c1_peaks();
    let nc1 = cfg.nc1_peaks();
    let c2 = cfg.c2_peaks();
    let nc2 = cfg.nc2_peaks();

    let mut nums = [0.0f64; N_NUMERIC];
    let mut cats = [0usize; N_ATTRS - N_NUMERIC];

    let mut emit =
        |b: &mut DatasetBuilder, rng: &mut StdRng, class: &str, subclass: usize, sig: usize| {
            // start uniform everywhere, then overwrite the owned attributes
            for v in nums.iter_mut() {
                *v = rng.gen::<f64>() * cfg.domain;
            }
            for c in cats.iter_mut() {
                *c = rng.gen_range(0..cfg.vocab);
            }
            let is_target = class == TARGET_CLASS;
            match subclass {
                0 => {
                    // conjunctive signature on (n0, n1)
                    let (p0, p1) = if is_target { &c1 } else { &nc1 };
                    let s = sig % 2;
                    nums[0] = p0[s].sample(cfg.shape, rng);
                    nums[1] = p1[s].sample(cfg.shape, rng);
                }
                1 => {
                    // disjunctive signature: one peak on n2 OR n3
                    let (p2, p3) = if is_target { &c2 } else { &nc2 };
                    let s = sig % 4;
                    if s < 2 {
                        nums[2] = p2[s].sample(cfg.shape, rng);
                    } else {
                        nums[3] = p3[s - 2].sample(cfg.shape, rng);
                    }
                }
                _ => {
                    // categorical word pair; nwps = 2 diagonal combinations
                    let nspa = if is_target { C3_NSPA } else { NC3_NSPA };
                    let pair = if is_target { (0, 1) } else { (2, 3) };
                    let s = sig % nspa;
                    let t = rng.gen_range(0..WORDS_PER_SIG);
                    let word = s * WORDS_PER_SIG + t;
                    cats[pair.0] = word;
                    cats[pair.1] = word;
                }
            }
            let mut row: Vec<Value<'_>> = Vec::with_capacity(N_ATTRS);
            row.extend(nums.iter().map(|&v| Value::Num(v)));
            row.extend(cats.iter().map(|&c| Value::Cat(word_names[c].as_str())));
            b.push_row(&row, class, 1.0).expect("schema fixed");
        };

    for i in 0..n_target {
        emit(&mut b, &mut rng, TARGET_CLASS, i % 3, i / 3);
    }
    for i in 0..n_non_target {
        emit(&mut b, &mut rng, NON_TARGET_CLASS, i % 3, i / 3);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SynthScale {
        SynthScale {
            n_records: 6_000,
            target_frac: 0.01,
        }
    }

    #[test]
    fn shape_of_generated_dataset() {
        let d = generate(&GeneralModelConfig::default(), &small(), 1);
        assert_eq!(d.n_rows(), 6_000);
        assert_eq!(d.n_attrs(), 8);
        assert_eq!(d.schema().attr(0).ty, AttrType::Numeric);
        assert_eq!(d.schema().attr(7).ty, AttrType::Categorical);
        let c = d.class_code(TARGET_CLASS).unwrap() as usize;
        assert_eq!(d.class_counts()[c], 60);
    }

    #[test]
    fn c1_records_satisfy_the_conjunction() {
        let cfg = GeneralModelConfig::default();
        let d = generate(&cfg, &small(), 2);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let (p0, p1) = cfg.c1_peaks();
        let mut seen = 0;
        // target subclass 0 = every third target record (emission order is
        // round-robin and targets are emitted first)
        let mut target_idx = 0usize;
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                if target_idx.is_multiple_of(3) {
                    let x0 = d.num(0, row);
                    let x1 = d.num(1, row);
                    let s = (0..2).find(|&s| p0[s].contains(x0));
                    assert!(s.is_some(), "row {row}: n0={x0} in no C1 peak");
                    assert!(
                        p1[s.unwrap()].contains(x1),
                        "row {row}: conjunction broken (n1={x1})"
                    );
                    seen += 1;
                }
                target_idx += 1;
            }
        }
        assert!(seen > 0);
    }

    #[test]
    fn c2_records_satisfy_a_disjunct() {
        let cfg = GeneralModelConfig::default();
        let d = generate(&cfg, &small(), 3);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let (p2, p3) = cfg.c2_peaks();
        let mut target_idx = 0usize;
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                if target_idx % 3 == 1 {
                    let in2 = p2.iter().any(|p| p.contains(d.num(2, row)));
                    let in3 = p3.iter().any(|p| p.contains(d.num(3, row)));
                    assert!(in2 || in3, "row {row} satisfies no C2 disjunct");
                }
                target_idx += 1;
            }
        }
    }

    #[test]
    fn c3_records_carry_matching_word_pairs() {
        let cfg = GeneralModelConfig::default();
        let d = generate(&cfg, &small(), 4);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let mut target_idx = 0usize;
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                if target_idx % 3 == 2 {
                    assert_eq!(
                        d.cat_name(4, row),
                        d.cat_name(5, row),
                        "row {row}: diagonal word pair broken"
                    );
                    let w: usize = d
                        .cat_name(4, row)
                        .strip_prefix('w')
                        .unwrap()
                        .parse()
                        .unwrap();
                    assert!(w < C3_NSPA * WORDS_PER_SIG);
                }
                target_idx += 1;
            }
        }
    }

    #[test]
    fn target_and_non_target_conjunctions_are_disjoint() {
        let cfg = GeneralModelConfig::default().with_widths(4.0, 4.0);
        let (c1, _) = cfg.c1_peaks();
        let (nc1, _) = cfg.nc1_peaks();
        for cp in &c1 {
            for np in &nc1 {
                assert!(
                    cp.hi() <= np.lo || np.hi() <= cp.lo,
                    "C1 {cp:?} overlaps NC1 {np:?}"
                );
            }
        }
    }

    #[test]
    fn dictionaries_agree_across_seeds() {
        let cfg = GeneralModelConfig::default();
        let d1 = generate(&cfg, &small(), 1);
        let d2 = generate(&cfg, &small(), 2);
        assert_eq!(
            d1.schema().attr(5).dict.code("w3"),
            d2.schema().attr(5).dict.code("w3")
        );
    }

    #[test]
    fn width_override() {
        let cfg = GeneralModelConfig::default().with_widths(4.0, 2.0);
        let (p0, _) = cfg.c1_peaks();
        assert!((p0[0].width - 2.0).abs() < 1e-12);
        let (q0, _) = cfg.nc1_peaks();
        assert!((q0[0].width - 1.0).abs() < 1e-12);
    }
}
