//! Peak (signature) geometry and sampling shared by the numeric and general
//! models.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The shape of a signature's distribution over its peak interval (the
/// model's `d-shape` parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeakShape {
    /// Flat rectangular (uniform over the peak).
    Rectangular,
    /// Symmetric triangular, densest at the centre (the shape used in the
    /// paper's experiments).
    Triangular,
    /// Truncated Gaussian (σ = width/6, clipped to the peak).
    Gaussian,
}

/// One peak: the half-open interval `[lo, lo + width)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Peak {
    /// Left edge.
    pub lo: f64,
    /// Width.
    pub width: f64,
}

impl Peak {
    /// The peak's centre.
    pub fn center(&self) -> f64 {
        self.lo + self.width / 2.0
    }

    /// Right edge.
    pub fn hi(&self) -> f64 {
        self.lo + self.width
    }

    /// Whether `x` falls inside the peak.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x < self.hi()
    }

    /// Samples a value from the peak under `shape`.
    pub fn sample<R: Rng>(&self, shape: PeakShape, rng: &mut R) -> f64 {
        match shape {
            PeakShape::Rectangular => self.lo + rng.gen::<f64>() * self.width,
            PeakShape::Triangular => {
                // mean of two uniforms is triangular on [0,1]
                let t = (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0;
                self.lo + t * self.width
            }
            PeakShape::Gaussian => {
                let sigma = self.width / 6.0;
                loop {
                    // Box-Muller, retry until inside the peak
                    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                    let u2: f64 = rng.gen();
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let x = self.center() + z * sigma;
                    if self.contains(x) {
                        return x;
                    }
                }
            }
        }
    }
}

/// Lays out `n_peaks` disjoint, uniformly spaced, identical peaks of total
/// width `total_width` over the domain `[0, domain)` — the paper's
/// signature geometry. Peak `k` is centred at `domain·(2k+1)/(2n)`.
pub fn layout_peaks(n_peaks: usize, total_width: f64, domain: f64) -> Vec<Peak> {
    assert!(n_peaks > 0, "need at least one peak");
    assert!(
        total_width > 0.0 && total_width < domain,
        "peaks must fit the domain"
    );
    let width = total_width / n_peaks as f64;
    assert!(
        width <= domain / n_peaks as f64,
        "peaks of width {width} overlap at spacing {}",
        domain / n_peaks as f64
    );
    (0..n_peaks)
        .map(|k| {
            let center = domain * (2 * k + 1) as f64 / (2 * n_peaks) as f64;
            Peak {
                lo: center - width / 2.0,
                width,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn layout_spaces_peaks_uniformly() {
        let peaks = layout_peaks(4, 0.2, 50.0);
        assert_eq!(peaks.len(), 4);
        let centers: Vec<f64> = peaks.iter().map(Peak::center).collect();
        assert_eq!(centers, vec![6.25, 18.75, 31.25, 43.75]);
        for p in &peaks {
            assert!((p.width - 0.05).abs() < 1e-12);
        }
    }

    #[test]
    fn peaks_are_disjoint() {
        let peaks = layout_peaks(5, 4.0, 50.0);
        for w in peaks.windows(2) {
            assert!(w[0].hi() <= w[1].lo, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "fit the domain")]
    fn oversized_peaks_rejected() {
        layout_peaks(2, 60.0, 50.0);
    }

    #[test]
    fn samples_stay_inside_peak_for_all_shapes() {
        let peak = Peak {
            lo: 10.0,
            width: 2.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        for shape in [
            PeakShape::Rectangular,
            PeakShape::Triangular,
            PeakShape::Gaussian,
        ] {
            for _ in 0..500 {
                let x = peak.sample(shape, &mut rng);
                assert!(peak.contains(x), "{x} outside peak for {shape:?}");
            }
        }
    }

    #[test]
    fn triangular_mass_concentrates_at_centre() {
        let peak = Peak {
            lo: 0.0,
            width: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let central = (0..n)
            .map(|_| peak.sample(PeakShape::Triangular, &mut rng))
            .filter(|x| (0.25..0.75).contains(x))
            .count();
        // middle half holds 3/4 of a triangular distribution
        let frac = central as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.03, "central mass {frac}");
    }

    #[test]
    fn rectangular_mass_is_flat() {
        let peak = Peak {
            lo: 0.0,
            width: 1.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let central = (0..n)
            .map(|_| peak.sample(PeakShape::Rectangular, &mut rng))
            .filter(|x| (0.25..0.75).contains(x))
            .count();
        let frac = central as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "central mass {frac}");
    }

    #[test]
    fn contains_is_half_open() {
        let p = Peak {
            lo: 1.0,
            width: 1.0,
        };
        assert!(p.contains(1.0));
        assert!(!p.contains(2.0));
    }
}
