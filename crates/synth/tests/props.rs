//! Property-based tests for the synthetic dataset models.

use pnr_synth::categorical::CategoricalModelConfig;
use pnr_synth::general::GeneralModelConfig;
use pnr_synth::numeric::NumericModelConfig;
use pnr_synth::peaks::{layout_peaks, Peak, PeakShape};
use pnr_synth::{SynthScale, NON_TARGET_CLASS, TARGET_CLASS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn peak_layout_is_disjoint_and_inside_domain(
        n_peaks in 1usize..8,
        total_width in 0.01f64..4.0,
        domain in 10.0f64..100.0,
    ) {
        prop_assume!(total_width < domain);
        let peaks = layout_peaks(n_peaks, total_width, domain);
        prop_assert_eq!(peaks.len(), n_peaks);
        let width_sum: f64 = peaks.iter().map(|p| p.width).sum();
        prop_assert!((width_sum - total_width).abs() < 1e-9);
        for p in &peaks {
            prop_assert!(p.lo >= 0.0 && p.hi() <= domain);
        }
        for w in peaks.windows(2) {
            prop_assert!(w[0].hi() <= w[1].lo + 1e-12);
        }
    }

    #[test]
    fn peak_samples_stay_inside(
        lo in -50.0f64..50.0,
        width in 0.01f64..10.0,
        seed in 0u64..100,
        shape_pick in 0usize..3,
    ) {
        use rand::SeedableRng;
        let shape = [PeakShape::Rectangular, PeakShape::Triangular, PeakShape::Gaussian]
            [shape_pick];
        let peak = Peak { lo, width };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let x = peak.sample(shape, &mut rng);
            prop_assert!(peak.contains(x), "{x} outside [{lo}, {})", peak.hi());
        }
    }

    #[test]
    fn numeric_generator_class_counts_are_exact(
        preset in 1usize..7,
        n in 500usize..3000,
        frac_millis in 1u32..100,
        seed in 0u64..50,
    ) {
        let frac = frac_millis as f64 / 1000.0;
        let cfg = NumericModelConfig::nsyn(preset);
        let scale = SynthScale { n_records: n, target_frac: frac };
        let d = pnr_synth::numeric::generate(&cfg, &scale, seed);
        prop_assert_eq!(d.n_rows(), n);
        let c = d.class_code(TARGET_CLASS).unwrap() as usize;
        prop_assert_eq!(d.class_counts()[c], scale.n_target());
        let nc = d.class_code(NON_TARGET_CLASS).unwrap() as usize;
        prop_assert_eq!(d.class_counts()[nc], n - scale.n_target());
    }

    #[test]
    fn numeric_targets_always_carry_a_signature(
        preset in 1usize..7,
        seed in 0u64..30,
    ) {
        let cfg = NumericModelConfig::nsyn(preset);
        let scale = SynthScale { n_records: 2_000, target_frac: 0.02 };
        let d = pnr_synth::numeric::generate(&cfg, &scale, seed);
        let c = d.class_code(TARGET_CLASS).unwrap();
        let peaks = cfg.target_peaks(0);
        for row in 0..d.n_rows() {
            if d.label(row) == c {
                let x = d.num(0, row);
                prop_assert!(peaks.iter().any(|p| p.contains(x)));
            }
        }
    }

    #[test]
    fn categorical_generator_respects_vocab(
        coa in 1usize..7,
        seed in 0u64..30,
    ) {
        let cfg = CategoricalModelConfig::coa(coa);
        let scale = SynthScale { n_records: 1_000, target_frac: 0.01 };
        let d = pnr_synth::categorical::generate(&cfg, &scale, seed);
        for a in 0..d.n_attrs() {
            prop_assert_eq!(d.schema().attr(a).dict.len(), cfg.vocab_of(a));
        }
    }

    #[test]
    fn general_generator_is_deterministic(seed in 0u64..50) {
        let cfg = GeneralModelConfig::default();
        let scale = SynthScale { n_records: 800, target_frac: 0.01 };
        let d1 = pnr_synth::general::generate(&cfg, &scale, seed);
        let d2 = pnr_synth::general::generate(&cfg, &scale, seed);
        for row in (0..d1.n_rows()).step_by(29) {
            prop_assert_eq!(d1.num(0, row), d2.num(0, row));
            prop_assert_eq!(d1.cat(4, row), d2.cat(4, row));
        }
    }

    #[test]
    fn scaled_by_preserves_target_fraction(factor_pct in 1u32..300) {
        let factor = factor_pct as f64 / 100.0;
        let s = SynthScale::paper_train().scaled_by(factor);
        prop_assert_eq!(s.target_frac, 0.003);
        prop_assert!(s.n_records >= 1);
    }
}
