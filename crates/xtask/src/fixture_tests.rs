//! Fixture-driven lint tests.
//!
//! Each `fixtures/bad/<rule>.rs` file marks every offending line with a
//! `// BAD` comment; the test asserts the rule fires on exactly that line
//! set (and nowhere else). Each `fixtures/good/<rule>.rs` file must be
//! silent under *all* rules.

use crate::lints::{lint_file, ALL_RULES};
use std::collections::BTreeSet;
use std::path::Path;

fn fixture(kind: &str, rule_file: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(rule_file);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

fn marked_lines(source: &str) -> BTreeSet<usize> {
    source
        .lines()
        .enumerate()
        .filter(|(_, l)| l.contains("// BAD"))
        .map(|(i, _)| i + 1)
        .collect()
}

/// Asserts `rule` fires on exactly the `// BAD` lines of its bad fixture,
/// with `expected_total` findings overall (lines may fire more than once).
fn assert_bad_fixture(rule: &'static str, file: &str, expected_total: usize) {
    let source = fixture("bad", file);
    let marked = marked_lines(&source);
    assert!(!marked.is_empty(), "fixture {file} has no BAD markers");
    let findings = lint_file(file, &source, &[rule]);
    let fired: BTreeSet<usize> = findings.iter().map(|f| f.line).collect();
    assert_eq!(
        fired, marked,
        "{rule}: fired lines != BAD-marked lines in {file}"
    );
    assert!(findings.iter().all(|f| f.rule == rule));
    assert_eq!(findings.len(), expected_total, "{rule}: finding count");
}

#[test]
fn float_eq_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("float-eq", "float_eq.rs", 7);
}

#[test]
fn lib_unwrap_bad_fixture_fires_on_every_marked_line() {
    // the chained line carries two findings
    assert_bad_fixture("lib-unwrap", "lib_unwrap.rs", 5);
}

#[test]
fn nondet_iter_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("nondet-iter", "nondet_iter.rs", 6);
}

#[test]
fn lossy_cast_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("lossy-cast", "lossy_cast.rs", 5);
}

#[test]
fn nondet_merge_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("nondet-merge", "nondet_merge.rs", 3);
}

#[test]
fn unordered_float_sum_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("unordered-float-sum", "unordered_float_sum.rs", 5);
}

#[test]
fn telemetry_ungated_bad_fixture_fires_on_every_marked_line() {
    assert_bad_fixture("telemetry-ungated", "telemetry_ungated.rs", 4);
}

#[test]
fn good_fixtures_are_silent_under_every_rule() {
    for file in [
        "float_eq.rs",
        "lib_unwrap.rs",
        "nondet_iter.rs",
        "lossy_cast.rs",
        "nondet_merge.rs",
        "unordered_float_sum.rs",
        "telemetry_ungated.rs",
    ] {
        let source = fixture("good", file);
        let findings = lint_file(file, &source, &ALL_RULES);
        assert!(
            findings.is_empty(),
            "good fixture {file} produced findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

#[test]
fn bad_fixtures_are_silent_for_unrelated_rules() {
    // e.g. the lossy-cast fixture contains no float comparisons
    let source = fixture("bad", "lossy_cast.rs");
    assert!(lint_file("lossy_cast.rs", &source, &["float-eq"]).is_empty());
    let source = fixture("bad", "float_eq.rs");
    assert!(lint_file("float_eq.rs", &source, &["lossy-cast"]).is_empty());
    // the unannotated-scope fixture holds no telemetry calls or float sums
    let source = fixture("bad", "nondet_merge.rs");
    assert!(lint_file(
        "nondet_merge.rs",
        &source,
        &["telemetry-ungated", "unordered-float-sum"]
    )
    .is_empty());
}
