//! `cargo xtask lint` — the repo-specific lint driver.
//!
//! Walks every workspace crate's `src/` tree (plus the facade's root
//! `src/`), runs the token-level lints from [`lints`] with per-crate rule
//! scopes, and prints one `path:line: [rule] message` diagnostic per
//! finding. Exit status: 0 clean, 1 findings, 2 usage/IO error.
//!
//! Rule scopes (see DESIGN.md "Static analysis & invariants"):
//! - `float-eq`    — every crate except `xtask` itself
//! - `lib-unwrap`  — pnr-data, pnr-rules, pnr-core, pnr-telemetry (the
//!   library core plus the always-on observation layer), plus the
//!   serving-path modules outside those crates (see `SERVING_PATH_FILES`)
//! - `nondet-iter` — the learner path: data, rules, core, ripper, c45,
//!   plus telemetry (deterministic export order) and the serving-path
//!   modules (deterministic record order)
//! - `lossy-cast`  — row/code arithmetic: data, metrics, rules, core,
//!   ripper, c45
//!
//! `tests/`, `benches/`, `examples/`, `fixtures/`, `vendor/` and `target/`
//! are never walked; `#[cfg(test)]` items inside `src/` are exempted per
//! rule by the lint layer.

mod lexer;
mod lints;

#[cfg(test)]
mod fixture_tests;

use lints::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose non-test code must not panic via `.unwrap()`/`.expect()`.
const LIB_UNWRAP_CRATES: [&str; 4] = ["data", "rules", "core", "telemetry"];
/// Crates on the learner path where iteration order feeds rule ordering,
/// plus telemetry, whose export order must be deterministic.
const NONDET_ITER_CRATES: [&str; 6] = ["data", "rules", "core", "ripper", "c45", "telemetry"];
/// Crates doing row-index/code arithmetic.
const LOSSY_CAST_CRATES: [&str; 6] = ["data", "metrics", "rules", "core", "ripper", "c45"];
/// Serving-path modules outside the library crates. They sit between a
/// saved artifact and a caller's data stream, so they carry the core's
/// no-panic and deterministic-iteration discipline even though their
/// host crates (experiments, kddsim) do not as a whole.
const SERVING_PATH_FILES: [&str; 4] = [
    "crates/experiments/src/artifact_out.rs",
    "crates/experiments/src/bin/kdd_csv.rs",
    "crates/experiments/src/bin/predict.rs",
    "crates/kddsim/src/schema.rs",
];

/// The rules that apply to one repo-relative `.rs` path; empty = skip file.
fn rules_for(rel: &str) -> Vec<&'static str> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return Vec::new();
    }
    // the facade crate's src/ at the repo root
    if let Some(rest) = rel.strip_prefix("src/") {
        if !rest.contains('/') || rest.starts_with("bin/") {
            return vec!["float-eq"];
        }
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return Vec::new();
    };
    let Some((krate, tail)) = rest.split_once('/') else {
        return Vec::new();
    };
    if !tail.starts_with("src/") {
        return Vec::new(); // tests/, benches/, fixtures/, examples/
    }
    let mut rules = Vec::new();
    if krate != "xtask" {
        rules.push("float-eq");
    }
    if LIB_UNWRAP_CRATES.contains(&krate) {
        rules.push("lib-unwrap");
    }
    if NONDET_ITER_CRATES.contains(&krate) {
        rules.push("nondet-iter");
    }
    if LOSSY_CAST_CRATES.contains(&krate) {
        rules.push("lossy-cast");
    }
    if SERVING_PATH_FILES.contains(&rel.as_str()) {
        rules.push("lib-unwrap");
        rules.push("nondet-iter");
    }
    rules
}

/// Recursively collects `.rs` files under `dir`, skipping directories the
/// lints never apply to.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    const SKIP_DIRS: [&str; 6] = [
        "target", "vendor", "fixtures", "tests", "benches", "examples",
    ];
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`; returns all findings.
fn run_lints(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lints::lint_file(&rel, &source, &rules));
    }
    Ok(findings)
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => workspace_root(),
            };
            match run_lints(&root) {
                Ok(findings) if findings.is_empty() => {
                    eprintln!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        println!("{f}");
                    }
                    eprintln!("xtask lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: IO error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [workspace-root]");
            eprintln!("rules: {}", lints::ALL_RULES.join(", "));
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_mapping_per_crate() {
        assert_eq!(
            rules_for("crates/data/src/weights.rs"),
            ["float-eq", "lib-unwrap", "nondet-iter", "lossy-cast"]
        );
        assert_eq!(
            rules_for("crates/metrics/src/binary.rs"),
            ["float-eq", "lossy-cast"]
        );
        assert_eq!(
            rules_for("crates/ripper/src/prune.rs"),
            ["float-eq", "nondet-iter", "lossy-cast"]
        );
        assert_eq!(
            rules_for("crates/telemetry/src/lib.rs"),
            ["float-eq", "lib-unwrap", "nondet-iter"]
        );
        assert_eq!(rules_for("crates/synth/src/peaks.rs"), ["float-eq"]);
        assert_eq!(rules_for("src/lib.rs"), ["float-eq"]);
        // The compiled rule-evaluation engine sits on the scoring hot
        // path: bitset/segment arithmetic (lossy-cast), rank-order
        // determinism (nondet-iter) and the core no-panic rule all
        // apply in full.
        assert_eq!(
            rules_for("crates/rules/src/compiled.rs"),
            ["float-eq", "lib-unwrap", "nondet-iter", "lossy-cast"]
        );
        assert_eq!(
            rules_for("crates/core/src/compiled.rs"),
            ["float-eq", "lib-unwrap", "nondet-iter", "lossy-cast"]
        );
    }

    #[test]
    fn serving_path_files_get_the_core_discipline() {
        for rel in SERVING_PATH_FILES {
            assert_eq!(
                rules_for(rel),
                ["float-eq", "lib-unwrap", "nondet-iter"],
                "{rel}"
            );
        }
        // the rest of their host crates keeps its lighter scope
        assert_eq!(rules_for("crates/experiments/src/methods.rs"), ["float-eq"]);
        assert_eq!(rules_for("crates/kddsim/src/subclass.rs"), ["float-eq"]);
    }

    #[test]
    fn out_of_scope_paths_get_no_rules() {
        assert!(rules_for("crates/xtask/src/main.rs").is_empty());
        assert!(rules_for("crates/xtask/fixtures/bad/float_eq.rs").is_empty());
        assert!(rules_for("crates/rules/tests/audit_corruption.rs").is_empty());
        assert!(rules_for("crates/bench/benches/search.rs").is_empty());
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for("crates/data/src/notes.md").is_empty());
    }

    #[test]
    fn workspace_lint_is_clean() {
        let findings = run_lints(&workspace_root()).expect("workspace walk");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
