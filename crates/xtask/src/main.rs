//! `cargo xtask` — the repo's static-analysis suite and reproducibility
//! harness.
//!
//! Three subcommands:
//!
//! * `lint [--json] [root]` — walks every workspace crate's `src/` tree
//!   (plus the facade's root `src/`), runs the token-level lints from
//!   [`lints`] with per-crate rule scopes, and prints one
//!   `path:line: [rule] message` diagnostic per finding (or one JSON
//!   object per line under `--json`).
//! * `scopes [root]` — the cross-file scope-drift pass: fails when a
//!   crate is missing from the lint-scope roster, a roster entry or
//!   serving-path file no longer exists, or a source file escapes every
//!   lint scope (see [`scopes`]).
//! * `determinism [rows]` — the dynamic counterpart: fits a small kddsim
//!   workload under permuted row insertion orders × thread counts
//!   {1, 2, max} and asserts every `ModelArtifact` is bit-identical by
//!   FNV-1a checksum (see [`determinism`]).
//!
//! Exit status everywhere: 0 clean, 1 findings/violations, 2 usage/IO
//! error.
//!
//! Rule scopes (see DESIGN.md "Static analysis & invariants"):
//! - `float-eq`    — every crate (including `xtask` itself, so no file
//!   escapes all scopes)
//! - `lib-unwrap`  — pnr-data, pnr-rules, pnr-core, pnr-telemetry (the
//!   library core plus the always-on observation layer), plus the
//!   serving-path modules outside those crates (see `SERVING_PATH_FILES`)
//! - `nondet-iter` — the learner path: data, rules, core, ripper, c45,
//!   plus telemetry (deterministic export order) and the serving-path
//!   modules (deterministic record order)
//! - `lossy-cast`  — row/code arithmetic: data, metrics, rules, core,
//!   ripper, c45
//! - `nondet-merge` — the crates that may spawn worker threads on the
//!   learner path: data, rules, core
//! - `unordered-float-sum` — every learner whose statistics are float
//!   reductions: data, rules, core, ripper, c45
//! - `telemetry-ungated` — the hot-path crates carrying PR 4's
//!   zero-overhead guarantee: rules, core
//!
//! `tests/`, `benches/`, `examples/`, `fixtures/`, `vendor/` and `target/`
//! are never walked; `#[cfg(test)]` items inside `src/` are exempted per
//! rule by the lint layer.

mod determinism;
mod lexer;
mod lints;
mod scopes;

#[cfg(test)]
mod fixture_tests;

use lints::Finding;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Every crate directory expected under `crates/`, i.e. the lint-scope
/// roster. `cargo xtask scopes` fails when a directory on disk is missing
/// here (a new crate would silently escape the scoped lints) or when an
/// entry no longer exists on disk (stale roster).
const KNOWN_CRATES: [&str; 14] = [
    "bench",
    "c45",
    "core",
    "data",
    "experiments",
    "kddsim",
    "metrics",
    "ripper",
    "rules",
    "sentinel",
    "serve",
    "synth",
    "telemetry",
    "xtask",
];
/// Crates whose non-test code must not panic via `.unwrap()`/`.expect()`.
/// `serve` is here because the daemon sits behind a panic boundary that
/// must never be the *normal* error path, and `sentinel` because the
/// monitor must outlive the daemon failures it supervises.
const LIB_UNWRAP_CRATES: [&str; 6] = ["data", "rules", "core", "telemetry", "serve", "sentinel"];
/// Crates on the learner path where iteration order feeds rule ordering,
/// plus telemetry and serving, whose export/report order must be
/// deterministic.
const NONDET_ITER_CRATES: [&str; 8] = [
    "data",
    "rules",
    "core",
    "ripper",
    "c45",
    "telemetry",
    "serve",
    "sentinel",
];
/// Crates doing row-index/code arithmetic.
const LOSSY_CAST_CRATES: [&str; 6] = ["data", "metrics", "rules", "core", "ripper", "c45"];
/// Crates that may spawn worker threads on the learner path; every
/// `thread::scope`/`spawn` site there must name its deterministic merge
/// key in a `// det:merge(<ordering>)` directive.
const NONDET_MERGE_CRATES: [&str; 3] = ["data", "rules", "core"];
/// Crates whose model-visible statistics are float reductions; float
/// sums there must go through `pnr_data::weights::ordered_sum` (or carry
/// an order justification).
const FLOAT_SUM_CRATES: [&str; 5] = ["data", "rules", "core", "ripper", "c45"];
/// Hot-path crates carrying the zero-overhead telemetry guarantee:
/// every sink call must sit behind an `enabled()` gate.
const TELEMETRY_GATE_CRATES: [&str; 2] = ["rules", "core"];
/// Serving-path modules outside the library crates. They sit between a
/// saved artifact and a caller's data stream, so they carry the core's
/// no-panic and deterministic-iteration discipline even though their
/// host crates (experiments, kddsim) do not as a whole.
const SERVING_PATH_FILES: [&str; 5] = [
    "crates/experiments/src/artifact_out.rs",
    "crates/experiments/src/bin/kdd_csv.rs",
    "crates/experiments/src/bin/predict.rs",
    "crates/kddsim/src/faults.rs",
    "crates/kddsim/src/schema.rs",
];

/// The rules that apply to one repo-relative `.rs` path; empty = skip file.
fn rules_for(rel: &str) -> Vec<&'static str> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return Vec::new();
    }
    // the facade crate's src/ at the repo root
    if let Some(rest) = rel.strip_prefix("src/") {
        if !rest.contains('/') || rest.starts_with("bin/") {
            return vec!["float-eq"];
        }
    }
    let Some(rest) = rel.strip_prefix("crates/") else {
        return Vec::new();
    };
    let Some((krate, tail)) = rest.split_once('/') else {
        return Vec::new();
    };
    if !tail.starts_with("src/") {
        return Vec::new(); // tests/, benches/, fixtures/, examples/
    }
    let mut rules = vec!["float-eq"];
    if LIB_UNWRAP_CRATES.contains(&krate) {
        rules.push("lib-unwrap");
    }
    if NONDET_ITER_CRATES.contains(&krate) {
        rules.push("nondet-iter");
    }
    if LOSSY_CAST_CRATES.contains(&krate) {
        rules.push("lossy-cast");
    }
    if NONDET_MERGE_CRATES.contains(&krate) {
        rules.push("nondet-merge");
    }
    if FLOAT_SUM_CRATES.contains(&krate) {
        rules.push("unordered-float-sum");
    }
    if TELEMETRY_GATE_CRATES.contains(&krate) {
        rules.push("telemetry-ungated");
    }
    if SERVING_PATH_FILES.contains(&rel.as_str()) {
        rules.push("lib-unwrap");
        rules.push("nondet-iter");
    }
    rules
}

/// Recursively collects `.rs` files under `dir`, skipping directories the
/// lints never apply to.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    const SKIP_DIRS: [&str; 6] = [
        "target", "vendor", "fixtures", "tests", "benches", "examples",
    ];
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`; returns all findings.
fn run_lints(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    let mut findings = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        let rules = rules_for(&rel);
        if rules.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lints::lint_file(&rel, &source, &rules));
    }
    Ok(findings)
}

/// The workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Escapes `s` for embedding inside a JSON string literal. Hand-rolled so
/// the lint path stays dependency-free (the `--json` contract is one
/// flat object per line; nothing here needs serde).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding as a single-line JSON object (the `--json` output format).
fn finding_json(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"snippet\":\"{}\"}}",
        json_escape(f.rule),
        json_escape(&f.file),
        f.line,
        json_escape(&f.snippet)
    )
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo xtask lint [--json] [workspace-root]");
    eprintln!("       cargo xtask scopes [workspace-root]");
    eprintln!("       cargo xtask determinism [rows]");
    eprintln!("rules: {}", lints::ALL_RULES.join(", "));
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args.iter().skip(1).any(|a| a == "--json");
            let root = match args.iter().skip(1).find(|a| !a.starts_with("--")) {
                Some(p) => PathBuf::from(p),
                None => workspace_root(),
            };
            match run_lints(&root) {
                Ok(findings) if findings.is_empty() => {
                    eprintln!("xtask lint: clean");
                    ExitCode::SUCCESS
                }
                Ok(findings) => {
                    for f in &findings {
                        if json {
                            println!("{}", finding_json(f));
                        } else {
                            println!("{f}");
                        }
                    }
                    eprintln!("xtask lint: {} finding(s)", findings.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask lint: IO error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("scopes") => {
            let root = match args.get(1) {
                Some(p) => PathBuf::from(p),
                None => workspace_root(),
            };
            match scopes::check(&root) {
                Ok(problems) if problems.is_empty() => {
                    eprintln!("xtask scopes: every source file is covered");
                    ExitCode::SUCCESS
                }
                Ok(problems) => {
                    for p in &problems {
                        println!("{p}");
                    }
                    eprintln!("xtask scopes: {} problem(s)", problems.len());
                    ExitCode::FAILURE
                }
                Err(e) => {
                    eprintln!("xtask scopes: IO error: {e}");
                    ExitCode::from(2)
                }
            }
        }
        Some("determinism") => {
            let rows = match args.get(1) {
                None => determinism::DEFAULT_ROWS,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) if n >= 50 => n,
                    _ => {
                        eprintln!("xtask determinism: rows must be an integer >= 50, got `{raw}`");
                        return ExitCode::from(2);
                    }
                },
            };
            match determinism::run(rows) {
                Ok(report) => {
                    print!("{report}");
                    if report.is_deterministic() {
                        eprintln!(
                            "xtask determinism: all {} fits bit-identical",
                            report.runs()
                        );
                        ExitCode::SUCCESS
                    } else {
                        eprintln!("xtask determinism: checksum divergence");
                        ExitCode::FAILURE
                    }
                }
                Err(e) => {
                    eprintln!("xtask determinism: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_mapping_per_crate() {
        assert_eq!(
            rules_for("crates/data/src/weights.rs"),
            [
                "float-eq",
                "lib-unwrap",
                "nondet-iter",
                "lossy-cast",
                "nondet-merge",
                "unordered-float-sum"
            ]
        );
        assert_eq!(
            rules_for("crates/metrics/src/binary.rs"),
            ["float-eq", "lossy-cast"]
        );
        assert_eq!(
            rules_for("crates/ripper/src/prune.rs"),
            [
                "float-eq",
                "nondet-iter",
                "lossy-cast",
                "unordered-float-sum"
            ]
        );
        assert_eq!(
            rules_for("crates/telemetry/src/lib.rs"),
            ["float-eq", "lib-unwrap", "nondet-iter"]
        );
        assert_eq!(rules_for("crates/synth/src/peaks.rs"), ["float-eq"]);
        assert_eq!(rules_for("src/lib.rs"), ["float-eq"]);
        // The compiled rule-evaluation engine sits on the scoring hot
        // path: bitset/segment arithmetic (lossy-cast), rank-order
        // determinism (nondet-iter), parallel-merge and float-reduction
        // discipline, the zero-overhead telemetry gate and the core
        // no-panic rule all apply in full.
        for compiled in [
            "crates/rules/src/compiled.rs",
            "crates/core/src/compiled.rs",
        ] {
            assert_eq!(rules_for(compiled), lints::ALL_RULES, "{compiled}");
        }
        // The scoring daemon (library, both binaries) answers untrusted
        // network traffic: it carries the no-panic and deterministic-
        // iteration discipline, but not the learner-only float/merge
        // rules.
        for serve in [
            "crates/serve/src/daemon.rs",
            "crates/serve/src/pool.rs",
            "crates/serve/src/bin/pnr_serve.rs",
            "crates/serve/src/bin/pnr_loadgen.rs",
        ] {
            assert_eq!(
                rules_for(serve),
                ["float-eq", "lib-unwrap", "nondet-iter"],
                "{serve}"
            );
        }
        // The drift sentinel is a supervisor: it must not panic while
        // the thing it supervises is failing, and its verdicts and wire
        // output must be deterministic.
        for sentinel in [
            "crates/sentinel/src/detect.rs",
            "crates/sentinel/src/supervisor.rs",
            "crates/sentinel/src/bin/pnr_sentinel.rs",
        ] {
            assert_eq!(
                rules_for(sentinel),
                ["float-eq", "lib-unwrap", "nondet-iter"],
                "{sentinel}"
            );
        }
    }

    #[test]
    fn serving_path_files_get_the_core_discipline() {
        for rel in SERVING_PATH_FILES {
            assert_eq!(
                rules_for(rel),
                ["float-eq", "lib-unwrap", "nondet-iter"],
                "{rel}"
            );
        }
        // the rest of their host crates keeps its lighter scope
        assert_eq!(rules_for("crates/experiments/src/methods.rs"), ["float-eq"]);
        assert_eq!(rules_for("crates/kddsim/src/subclass.rs"), ["float-eq"]);
    }

    #[test]
    fn out_of_scope_paths_get_no_rules() {
        assert!(rules_for("crates/xtask/fixtures/bad/float_eq.rs").is_empty());
        assert!(rules_for("crates/rules/tests/audit_corruption.rs").is_empty());
        assert!(rules_for("crates/bench/benches/search.rs").is_empty());
        assert!(rules_for("vendor/rand/src/lib.rs").is_empty());
        assert!(rules_for("crates/data/src/notes.md").is_empty());
    }

    #[test]
    fn every_crate_source_file_gets_at_least_float_eq() {
        // `cargo xtask scopes` relies on this floor: no `src/` file may
        // escape every lint scope, xtask's own sources included.
        assert_eq!(rules_for("crates/xtask/src/main.rs"), ["float-eq"]);
        assert_eq!(
            rules_for("crates/bench/src/bin/score_baseline.rs"),
            ["float-eq"]
        );
    }

    #[test]
    fn json_escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn finding_json_is_one_flat_object() {
        let f = Finding {
            file: "crates/data/src/lib.rs".to_string(),
            line: 3,
            rule: "float-eq",
            msg: "irrelevant for json".to_string(),
            snippet: "x == 0.0".to_string(),
        };
        assert_eq!(
            finding_json(&f),
            "{\"rule\":\"float-eq\",\"path\":\"crates/data/src/lib.rs\",\
             \"line\":3,\"snippet\":\"x == 0.0\"}"
        );
    }

    #[test]
    fn workspace_lint_is_clean() {
        let findings = run_lints(&workspace_root()).expect("workspace walk");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
