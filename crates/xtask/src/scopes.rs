//! `cargo xtask scopes` — the cross-file scope-drift pass.
//!
//! The per-file lint scopes in `rules_for` are hand-listed: crate names
//! sit in roster constants, serving-path files in `SERVING_PATH_FILES`.
//! Hand-listed scopes drift — a new crate or module lands, nobody adds
//! it to a roster, and its code silently escapes the lints it should
//! carry. This pass makes that drift loud:
//!
//! 1. every directory under `crates/` must appear in `KNOWN_CRATES`
//!    (a new crate must be classified into the lint scopes explicitly);
//! 2. every `KNOWN_CRATES` entry must exist on disk (no stale roster);
//! 3. every `.rs` file under `crates/*/src/**` and the facade's `src/`
//!    must be covered by at least one lint scope in `rules_for`;
//! 4. every `SERVING_PATH_FILES` entry must exist on disk (a moved or
//!    renamed serving module would otherwise shed its extra discipline
//!    without notice).
//!
//! Returns one human-readable problem line per violation; empty = clean.

use crate::{rules_for, walk, KNOWN_CRATES, SERVING_PATH_FILES};
use std::path::Path;

/// Runs all four drift checks against the workspace rooted at `root`.
pub fn check(root: &Path) -> std::io::Result<Vec<String>> {
    let mut problems = Vec::new();

    // 1 + 2: the crate roster matches the `crates/` directory exactly.
    let crates_dir = root.join("crates");
    let mut on_disk = Vec::new();
    if crates_dir.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if name.starts_with('.') {
                continue;
            }
            if !KNOWN_CRATES.contains(&name.as_str()) {
                problems.push(format!(
                    "crates/{name}: crate is absent from the lint-scope roster; \
                     add it to KNOWN_CRATES and classify it into the rule scopes \
                     in crates/xtask/src/main.rs"
                ));
            }
            on_disk.push(name);
        }
    }
    for known in KNOWN_CRATES {
        if !on_disk.iter().any(|n| n == known) {
            problems.push(format!(
                "crates/{known}: roster entry has no directory on disk; remove \
                 it from KNOWN_CRATES or restore the crate"
            ));
        }
    }

    // 3: no source file escapes every lint scope.
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        // Only `src/` trees carry lint scopes by design; anything else the
        // walk yields (e.g. a stray top-level helper) is out of contract.
        let in_scope_tree = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split_once('/'))
            .map(|(_, tail)| tail.starts_with("src/"))
            .unwrap_or_else(|| rel.starts_with("src/"));
        if in_scope_tree && rules_for(&rel).is_empty() {
            problems.push(format!(
                "{rel}: source file is covered by no lint scope; extend \
                 rules_for in crates/xtask/src/main.rs"
            ));
        }
    }

    // 4: the serving-path file list tracks reality.
    for rel in SERVING_PATH_FILES {
        if !root.join(rel).is_file() {
            problems.push(format!(
                "{rel}: SERVING_PATH_FILES entry does not exist; the serving \
                 module moved without its lint scope following"
            ));
        }
    }

    problems.sort();
    Ok(problems)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_workspace_has_no_scope_drift() {
        let problems = check(&crate::workspace_root()).expect("workspace walk");
        assert!(problems.is_empty(), "scope drift:\n{}", problems.join("\n"));
    }

    #[test]
    fn unknown_crate_is_reported() {
        let root = std::env::temp_dir().join(format!("xtask-scopes-{}", std::process::id()));
        let src = root.join("crates/mystery/src");
        std::fs::create_dir_all(&src).expect("mkdir");
        std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").expect("write");
        let problems = check(&root).expect("walk");
        assert!(
            problems.iter().any(|p| p.contains("crates/mystery")),
            "expected a roster problem for crates/mystery, got:\n{}",
            problems.join("\n")
        );
        // Known crates are all absent from the scratch tree, so the stale
        // roster check fires for each of them too.
        for known in KNOWN_CRATES {
            assert!(problems
                .iter()
                .any(|p| p.contains(&format!("crates/{known}"))));
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
