//! `cargo xtask determinism` — the dynamic reproducibility harness.
//!
//! The static lints (`nondet-merge`, `unordered-float-sum`) police the
//! *sources* of nondeterminism; this harness proves the *outcome*: a fit
//! of the same logical training set must produce the same model down to
//! the last bit, no matter how the rows were inserted or how many worker
//! threads the condition search used. That end-to-end bit-identity is
//! the regression gate ROADMAP item 3 (out-of-core, row-parallel
//! training) must keep passing — the paper's two-phase induction is
//! greedy and order-sensitive, so an ulp of drift in a Z-number can
//! change the learned rule list silently.
//!
//! Protocol: generate one kddsim training set, rebuild it under K row
//! permutations (the pre-registered kddsim schema keeps dictionary codes
//! independent of insertion order), fit each copy under paired
//! (worker-thread cap, row-shard count) configs {(1,1), (2,2),
//! (max, ~rows/4)}, wrap each fit in a [`ModelArtifact`] (params
//! normalised so neither knob is itself compared) and assert all
//! FNV-1a checksums of the serialized artifacts are identical.
//!
//! Row-permutation invariance holds because kddsim rows carry unit
//! weights: every learner statistic is then a sum of 1.0s — exact in
//! f64 far beyond any training-set size — so reordering terms cannot
//! shift a single bit. Fractional weights void that guarantee, which is
//! exactly why `stratify_weights` output must never be row-shuffled
//! between fits that are expected to agree.

use pnr_core::{ModelArtifact, PnruleLearner, PnruleParams};
use pnr_data::fingerprint::fnv1a_64;
use pnr_data::{Dataset, Value};

/// Default kddsim training-set size: large enough that full-view
/// searches cross the parallel cell threshold, small enough that the
/// nine debug-profile fits stay in CI-friendly time.
pub const DEFAULT_ROWS: usize = 1500;

/// Seed for both the kddsim generator and the row permutation.
const SEED: u64 = 42;

/// Target class of the harness fits. `probe` is rare enough (~0.8% of
/// the train mix) to exercise the full P/N pipeline at small sizes.
const TARGET_CLASS: &str = "probe";

/// The checksums of every (row order × worker cap) fit.
#[derive(Debug)]
pub struct DeterminismReport {
    /// Rows in the generated training set.
    pub rows: usize,
    /// `(run label, FNV-1a checksum of the serialized artifact)`.
    pub results: Vec<(String, u64)>,
}

impl DeterminismReport {
    /// True when every fit produced bit-identical artifact bytes.
    pub fn is_deterministic(&self) -> bool {
        self.results.windows(2).all(|w| w[0].1 == w[1].1)
    }

    /// Number of fits performed.
    pub fn runs(&self) -> usize {
        self.results.len()
    }
}

impl std::fmt::Display for DeterminismReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "determinism: kddsim rows={} seed={SEED} target={TARGET_CLASS}",
            self.rows
        )?;
        for (label, sum) in &self.results {
            writeln!(f, "  {label}: {sum:016x}")?;
        }
        Ok(())
    }
}

/// A deterministic Fisher–Yates permutation of `0..n` driven by a
/// 64-bit LCG (no external RNG: the harness must not depend on ambient
/// entropy).
fn lcg_shuffle(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = ((state >> 33) as usize) % (i + 1);
        order.swap(i, j);
    }
    order
}

/// Rebuilds `base` with rows pushed in `order`. The builder comes from
/// `pnr_kddsim::build_schema_builder`, which pre-registers every
/// categorical value and class label — so dictionary codes (and with
/// them the schema fingerprint) are identical no matter the insertion
/// order, and only row placement differs.
fn permuted_copy(base: &Dataset, order: &[usize]) -> Result<Dataset, String> {
    let mut b = pnr_kddsim::build_schema_builder();
    b.reserve(base.n_rows());
    for &r in order {
        let mut row: Vec<Value<'_>> = Vec::with_capacity(base.n_attrs());
        for a in 0..base.n_attrs() {
            if base.schema().attr(a).is_numeric() {
                row.push(Value::num(base.num(a, r)));
            } else {
                row.push(Value::cat(base.cat_name(a, r)));
            }
        }
        b.push_row(&row, base.class_name(base.label(r)), base.weight(r))
            .map_err(|e| format!("rebuilding permuted dataset: {e}"))?;
    }
    Ok(b.finish())
}

/// Fits one copy with the given worker cap and row-shard count and
/// returns the FNV-1a checksum of its serialized [`ModelArtifact`].
/// `search_workers` and `row_shards` are the knobs under test, so the
/// artifact's stored params normalise both to `None` — the compared
/// bytes must cover model, report and schema, not the sweep variables
/// themselves.
fn fit_checksum(
    data: &Dataset,
    target: u32,
    workers: Option<usize>,
    shards: Option<usize>,
) -> Result<u64, String> {
    let params = PnruleParams {
        search_workers: workers,
        row_shards: shards,
        ..Default::default()
    };
    let learner = PnruleLearner::new(params);
    let (model, report) = learner.fit_with_report(data, target);
    let mut stored = learner.params().clone();
    stored.search_workers = None;
    stored.row_shards = None;
    let artifact = ModelArtifact::new(model, stored, report, data.schema().clone())
        .map_err(|e| format!("artifact assembly: {e}"))?;
    let text = artifact
        .to_file_string()
        .map_err(|e| format!("artifact serialization: {e}"))?;
    Ok(fnv1a_64(text.as_bytes()))
}

/// Runs the full sweep: 3 row orders × paired (worker cap, row-shard)
/// configs {(1,1), (2,2), (max, shard-per-few-rows)}. Shard-count
/// invariance holds for the same unit-weight reason as row-permutation
/// invariance: each shard's `CovStats` is a sum of 1.0s, so the
/// shard-index-order reduction reassociates exact integer sums. The last
/// config drives the shard count far past the worker count (one shard
/// per handful of rows) to prove the reduction — not scheduling luck —
/// carries the guarantee.
pub fn run(rows: usize) -> Result<DeterminismReport, String> {
    let base = pnr_kddsim::generate_train(rows, SEED);
    let target = base
        .schema()
        .classes
        .code(TARGET_CLASS)
        .ok_or_else(|| format!("kddsim schema has no `{TARGET_CLASS}` class"))?;
    let max_workers = std::thread::available_parallelism()
        .map_or(2, |p| p.get())
        .max(2);
    let max_shards = (rows / 4).clamp(3, 1024);

    let orders: [(&str, Vec<usize>); 3] = [
        ("identity", (0..base.n_rows()).collect()),
        ("reversed", (0..base.n_rows()).rev().collect()),
        ("shuffled", lcg_shuffle(base.n_rows(), SEED)),
    ];
    let configs = [
        ("workers=1 shards=1".to_string(), Some(1), Some(1)),
        ("workers=2 shards=2".to_string(), Some(2), Some(2)),
        (
            format!("workers=max({max_workers}) shards={max_shards}"),
            Some(max_workers),
            Some(max_shards),
        ),
    ];

    let mut results = Vec::new();
    for (oname, order) in &orders {
        let data = permuted_copy(&base, order)?;
        for (cname, w, s) in &configs {
            let sum = fit_checksum(&data, target, *w, *s)?;
            results.push((format!("rows={oname:<8} {cname}"), sum));
        }
    }
    Ok(DeterminismReport { rows, results })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_shuffle_is_a_deterministic_permutation() {
        let a = lcg_shuffle(100, 7);
        let b = lcg_shuffle(100, 7);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<_>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn permuted_copy_preserves_schema_and_content() {
        let base = pnr_kddsim::generate_train(120, SEED);
        let order = lcg_shuffle(base.n_rows(), 3);
        let copy = permuted_copy(&base, &order).expect("rebuild");
        assert_eq!(
            copy.schema().fingerprint(),
            base.schema().fingerprint(),
            "pre-registered dictionaries must make codes order-independent"
        );
        for (to, &from) in order.iter().enumerate() {
            assert_eq!(copy.label(to), base.label(from));
            for a in 0..base.n_attrs() {
                if base.schema().attr(a).is_numeric() {
                    assert_eq!(copy.num(a, to).to_bits(), base.num(a, from).to_bits());
                } else {
                    assert_eq!(copy.cat(a, to), base.cat(a, from));
                }
            }
        }
    }

    #[test]
    fn small_sweep_is_bit_identical() {
        let report = run(300).expect("harness run");
        assert_eq!(report.runs(), 9);
        assert!(report.is_deterministic(), "checksum divergence:\n{report}");
    }
}
