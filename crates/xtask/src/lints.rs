//! The seven repo-specific lints, run over the token stream of one file.
//!
//! | rule                  | fires on                                                 |
//! |-----------------------|----------------------------------------------------------|
//! | `float-eq`            | `==` / `!=` with a float-literal operand                 |
//! | `lib-unwrap`          | `.unwrap()` / `.expect(` in library (non-test) code      |
//! | `nondet-iter`         | `HashMap` / `HashSet` in learner code paths              |
//! | `lossy-cast`          | bare `as` narrowing to u8/u16/u32/i8/i16/i32             |
//! | `nondet-merge`        | `thread::scope` / `spawn` without a `det:merge` directive|
//! | `unordered-float-sum` | float `.sum()` / scalar float `+=` accumulation          |
//! | `telemetry-ungated`   | `sink.add(` / `.span_open(` without a nearby `enabled()` |
//!
//! Test scope — any item under a `#[test]` or `#[cfg(test)]` attribute —
//! is exempt from every rule except `float-eq` (tests may panic, cast and
//! sum freely); `float-eq` applies everywhere because exact float
//! assertions in tests are how PR 1's seed bugs slipped in. A finding
//! is suppressed by a `// lint:allow(<rule>)` comment on the same line or
//! the line directly above. `nondet-merge` is additionally satisfied by a
//! `// det:merge(<ordering>)` directive on the site's line or up to two
//! lines above — unlike an allow, the directive *names* the deterministic
//! merge key the join relies on, and one directive on a `thread::scope`
//! head covers every `spawn` inside that scope call.

use crate::lexer::{lex, Kind, Token};

/// Names of every lint rule, in report order.
pub const ALL_RULES: [&str; 7] = [
    "float-eq",
    "lib-unwrap",
    "nondet-iter",
    "lossy-cast",
    "nondet-merge",
    "unordered-float-sum",
    "telemetry-ungated",
];

/// One diagnostic: a rule firing at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (or fixture label) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub msg: String,
    /// The offending source line, trimmed — carried for `--json` output.
    pub snippet: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Integer types an `as` cast may silently truncate row/code arithmetic to.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Marks every token inside a `#[test]`- or `#[cfg(test)]`-attributed item.
///
/// The attribute's following item ends at the first `;` seen before any
/// block opens, otherwise at the matching `}` of the first `{` — which
/// covers `use`/`const` declarations, functions and whole `mod tests`
/// blocks. `#[cfg(not(test))]` does *not* mark test scope.
fn test_scope_mask(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if tokens[i].text != "#" || i + 1 >= n || tokens[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // collect the attribute body up to its matching `]`
        let attr_start = i;
        let mut j = i + 1;
        let mut bracket_depth = 0;
        let mut has_test = false;
        let mut has_not = false;
        while j < n {
            match tokens[j].text.as_str() {
                "[" => bracket_depth += 1,
                "]" => {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        break;
                    }
                }
                "test" if tokens[j].kind == Kind::Ident => has_test = true,
                "not" if tokens[j].kind == Kind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j + 1;
            continue;
        }
        // skip any further attributes, then span the item itself
        let mut k = j + 1;
        while k + 1 < n && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut depth = 0;
            k += 1;
            while k < n {
                match tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0;
        let mut end = k;
        while end < n {
            match tokens[end].text.as_str() {
                ";" if brace_depth == 0 => break,
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(n)).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// True when `tokens[i]` is the `scope` of a `thread::scope(` call head.
fn is_thread_scope(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == Kind::Ident
        && tokens[i].text == "scope"
        && i >= 2
        && tokens[i - 1].text == "::"
        && tokens[i - 2].text == "thread"
        && i + 1 < tokens.len()
        && tokens[i + 1].text == "("
}

/// True when `tokens[i]` is the `spawn` of a `.spawn(` / `thread::spawn(`
/// call.
fn is_spawn_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == Kind::Ident
        && tokens[i].text == "spawn"
        && i >= 1
        && (tokens[i - 1].text == "." || tokens[i - 1].text == "::")
        && i + 1 < tokens.len()
        && tokens[i + 1].text == "("
}

/// Marks every token inside the call parens of a `thread::scope(...)`, so
/// the `spawn`s a scope drives are attributed to the scope head: one
/// `det:merge` directive on the head covers them all, and an unannotated
/// scope produces exactly one finding.
fn thread_scope_cover(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut covered = vec![false; n];
    for i in 0..n {
        if !is_thread_scope(tokens, i) {
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < n {
            match tokens[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            covered[j] = true;
            j += 1;
        }
    }
    covered
}

/// Names of `let mut` bindings initialised from (or ascribed) a float, i.e.
/// the scalar accumulators whose `+=` order `unordered-float-sum` polices.
fn float_accumulator_names(tokens: &[Token]) -> Vec<String> {
    let n = tokens.len();
    let mut names = Vec::new();
    for i in 0..n {
        if tokens[i].text != "let"
            || i + 2 >= n
            || tokens[i + 1].text != "mut"
            || tokens[i + 2].kind != Kind::Ident
        {
            continue;
        }
        let name = &tokens[i + 2].text;
        let mut j = i + 3;
        if j < n && tokens[j].text == ":" {
            if j + 1 < n && (tokens[j + 1].text == "f64" || tokens[j + 1].text == "f32") {
                names.push(name.clone());
                continue;
            }
            while j < n && tokens[j].text != "=" && tokens[j].text != ";" {
                j += 1;
            }
        }
        if j < n && tokens[j].text == "=" {
            let mut k = j + 1;
            if k < n && tokens[k].text == "-" {
                k += 1; // `let mut acc = -1.0;`
            }
            if k < n && tokens[k].kind == Kind::Float {
                names.push(name.clone());
            }
        }
    }
    names
}

/// Lints `source` (labelled `file` in diagnostics) with the given subset of
/// [`ALL_RULES`]. Directives and test-scope exemptions are applied here, so
/// callers get only reportable findings.
pub fn lint_file(file: &str, source: &str, rules: &[&str]) -> Vec<Finding> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let n = tokens.len();
    let in_test = test_scope_mask(tokens);
    let scope_cover = thread_scope_cover(tokens);
    let float_accs = float_accumulator_names(tokens);
    let source_lines: Vec<&str> = source.lines().collect();
    let want = |r: &str| rules.contains(&r);
    // A det:merge directive on the site's line or up to two lines above it
    // annotates a parallel join (the slack admits one wrapping comment line).
    let det_merge_near = |line: usize| {
        lexed
            .det_merges
            .iter()
            .any(|(l, _)| *l <= line && line - *l <= 2)
    };
    // An `enabled` identifier on the call's line or up to ten lines above is
    // taken as the telemetry gate (`if sink.enabled() { … }` or an early
    // `if !sink.enabled() { return }`).
    let enabled_near = |line: usize| {
        tokens.iter().any(|t| {
            t.kind == Kind::Ident && t.text == "enabled" && t.line <= line && line - t.line <= 10
        })
    };
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        let allowed = lexed
            .allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line));
        if !allowed {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule,
                msg,
                snippet: source_lines
                    .get(line.saturating_sub(1))
                    .map_or(String::new(), |s| s.trim().to_string()),
            });
        }
    };

    for i in 0..n {
        let t = &tokens[i];
        match t.kind {
            Kind::Punct if want("float-eq") && (t.text == "==" || t.text == "!=") => {
                let left_float = i > 0 && tokens[i - 1].kind == Kind::Float;
                let mut j = i + 1;
                if j < n && tokens[j].text == "-" {
                    j += 1; // unary minus: `== -1.0`
                }
                let right_float = j < n && tokens[j].kind == Kind::Float;
                if left_float || right_float {
                    push(
                        t.line,
                        "float-eq",
                        format!(
                            "exact float comparison `{}` against a float literal; \
                             use pnr_data::weights::approx (is_zero / approx_eq)",
                            t.text
                        ),
                    );
                }
            }
            Kind::Ident
                if want("lib-unwrap")
                    && !in_test[i]
                    && (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && tokens[i - 1].text == "."
                    && i + 1 < n
                    && tokens[i + 1].text == "(" =>
            {
                push(
                    t.line,
                    "lib-unwrap",
                    format!(
                        "`.{}()` in library code; return a typed error or use a \
                         non-panicking pattern (`let … else`, `match`, `total_cmp`)",
                        t.text
                    ),
                );
            }
            _ => {}
        }
        if t.kind == Kind::Ident
            && want("nondet-iter")
            && !in_test[i]
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                t.line,
                "nondet-iter",
                format!(
                    "`{}` iteration order is nondeterministic and can leak into rule \
                     ordering; use a Vec/BTreeMap or annotate lookup-only use",
                    t.text
                ),
            );
        }
        if t.kind == Kind::Ident
            && want("lossy-cast")
            && !in_test[i]
            && t.text == "as"
            && i + 1 < n
            && tokens[i + 1].kind == Kind::Ident
            && NARROW_INT_TYPES.contains(&tokens[i + 1].text.as_str())
        {
            push(
                t.line,
                "lossy-cast",
                format!(
                    "bare `as {}` narrowing can silently truncate; use \
                     pnr_data::index::to_u32 or TryFrom",
                    tokens[i + 1].text
                ),
            );
        }
        if want("nondet-merge") && !in_test[i] {
            if is_thread_scope(tokens, i) && !det_merge_near(t.line) {
                push(
                    t.line,
                    "nondet-merge",
                    "`thread::scope` joins worker results in nondeterministic completion \
                     order; annotate the site with `// det:merge(<ordering>)` naming the \
                     deterministic merge key (e.g. lowest-attr-first)"
                        .to_string(),
                );
            } else if is_spawn_call(tokens, i) && !scope_cover[i] && !det_merge_near(t.line) {
                push(
                    t.line,
                    "nondet-merge",
                    "`spawn` outside an annotated `thread::scope`; annotate the join with \
                     `// det:merge(<ordering>)` naming the deterministic merge key"
                        .to_string(),
                );
            }
        }
        if want("unordered-float-sum") && !in_test[i] {
            if t.kind == Kind::Ident && t.text == "sum" && i >= 1 && tokens[i - 1].text == "." {
                let bare = i + 1 < n && tokens[i + 1].text == "(";
                let float_turbofish = i + 3 < n
                    && tokens[i + 1].text == "::"
                    && tokens[i + 2].text == "<"
                    && (tokens[i + 3].text == "f64" || tokens[i + 3].text == "f32");
                if bare || float_turbofish {
                    push(
                        t.line,
                        "unordered-float-sum",
                        "float addition order is model-visible (Z-number, gain and gini \
                         stats shift with it); route the sum through \
                         pnr_data::weights::ordered_sum, or mark an integer sum explicit \
                         with a `.sum::<usize>()`-style turbofish"
                            .to_string(),
                    );
                }
            }
            if t.text == "+="
                && i >= 1
                && tokens[i - 1].kind == Kind::Ident
                && float_accs.contains(&tokens[i - 1].text)
            {
                push(
                    t.line,
                    "unordered-float-sum",
                    format!(
                        "`{} +=` accumulates a float whose addition order is \
                         model-visible; route the reduction through \
                         pnr_data::weights::ordered_sum or annotate why the \
                         iteration order is already fixed",
                        tokens[i - 1].text
                    ),
                );
            }
        }
        if want("telemetry-ungated")
            && !in_test[i]
            && t.kind == Kind::Ident
            && i >= 1
            && tokens[i - 1].text == "."
            && i + 1 < n
            && tokens[i + 1].text == "("
            && (t.text == "span_open"
                || (t.text == "add" && i >= 2 && tokens[i - 2].text == "sink"))
            && !enabled_near(t.line)
        {
            push(
                t.line,
                "telemetry-ungated",
                format!(
                    "`.{}(` without a nearby `enabled()` gate; wrap it in \
                     `if sink.enabled() {{ … }}` so the disabled path stays \
                     zero-overhead",
                    t.text
                ),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str, rules: &[&str]) -> Vec<(&'static str, usize)> {
        lint_file("t.rs", src, rules)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn float_eq_fires_on_literal_comparisons() {
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == 0.0 }", &ALL_RULES),
            [("float-eq", 1)]
        );
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { 1e-9 != x }", &ALL_RULES),
            [("float-eq", 1)]
        );
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == -1.0 }", &ALL_RULES),
            [("float-eq", 1)]
        );
    }

    #[test]
    fn float_eq_ignores_int_and_var_comparisons() {
        assert!(rules_fired("fn f(x: u32) -> bool { x == 0 }", &ALL_RULES).is_empty());
        assert!(rules_fired("fn f(a: f64, b: f64) -> bool { a == b }", &ALL_RULES).is_empty());
        assert!(rules_fired(
            "fn f(x: f64) -> bool { x == f64::NEG_INFINITY }",
            &ALL_RULES
        )
        .is_empty());
    }

    #[test]
    fn float_eq_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(x: f64) { assert!(x == 1.0); }\n}";
        assert_eq!(rules_fired(src, &ALL_RULES), [("float-eq", 3)]);
    }

    #[test]
    fn lib_unwrap_fires_outside_tests_only() {
        let lib = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_fired(lib, &["lib-unwrap"]), [("lib-unwrap", 1)]);
        let test = "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}";
        assert!(rules_fired(test, &["lib-unwrap"]).is_empty());
        let test_fn = "#[test]\nfn t() { Some(1).expect(\"x\"); }";
        assert!(rules_fired(test_fn, &["lib-unwrap"]).is_empty());
    }

    #[test]
    fn lib_unwrap_ignores_unwrap_or_family() {
        assert!(
            rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }", &ALL_RULES).is_empty()
        );
        assert!(rules_fired(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }",
            &ALL_RULES
        )
        .is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_fired(src, &["lib-unwrap"]), [("lib-unwrap", 2)]);
    }

    #[test]
    fn nondet_iter_fires_on_hash_containers() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let fired = rules_fired(src, &["nondet-iter"]);
        assert_eq!(fired.len(), 3);
        assert!(fired.iter().all(|(r, _)| *r == "nondet-iter"));
    }

    #[test]
    fn lossy_cast_fires_on_narrowing_only() {
        assert_eq!(
            rules_fired("fn f(x: usize) -> u32 { x as u32 }", &["lossy-cast"]),
            [("lossy-cast", 1)]
        );
        assert!(rules_fired("fn f(x: u32) -> usize { x as usize }", &["lossy-cast"]).is_empty());
        assert!(rules_fired("fn f(x: u32) -> f64 { x as f64 }", &["lossy-cast"]).is_empty());
        assert!(rules_fired("use foo as bar;", &["lossy-cast"]).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let same = "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(float-eq)";
        assert!(rules_fired(same, &ALL_RULES).is_empty());
        let above = "// lint:allow(float-eq)\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(rules_fired(above, &ALL_RULES).is_empty());
        let wrong_rule = "// lint:allow(lib-unwrap)\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_fired(wrong_rule, &ALL_RULES), [("float-eq", 2)]);
        let too_far = "// lint:allow(float-eq)\n\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_fired(too_far, &ALL_RULES), [("float-eq", 3)]);
    }

    #[test]
    fn rule_selection_is_respected() {
        let src = "fn f(x: Option<f64>) -> bool { x.unwrap() == 0.0 }";
        assert_eq!(rules_fired(src, &["float-eq"]), [("float-eq", 1)]);
        assert_eq!(rules_fired(src, &["lib-unwrap"]), [("lib-unwrap", 1)]);
        assert_eq!(rules_fired(src, &ALL_RULES).len(), 2);
    }

    #[test]
    fn nondet_merge_fires_on_unannotated_scope() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert_eq!(rules_fired(src, &["nondet-merge"]), [("nondet-merge", 1)]);
    }

    #[test]
    fn nondet_merge_directive_covers_scope_and_inner_spawns() {
        let src = "fn f() {\n // det:merge(lowest-attr-first)\n std::thread::scope(|s| {\n  s.spawn(|| {});\n  s.spawn(|| {});\n });\n}";
        assert!(rules_fired(src, &["nondet-merge"]).is_empty());
    }

    #[test]
    fn nondet_merge_fires_on_standalone_spawn() {
        let src = "fn f() { let h = std::thread::spawn(|| 1); h.join(); }";
        assert_eq!(rules_fired(src, &["nondet-merge"]), [("nondet-merge", 1)]);
        let annotated = "fn f() {\n // det:merge(single-worker)\n let h = std::thread::spawn(|| 1);\n h.join();\n}";
        assert!(rules_fired(annotated, &["nondet-merge"]).is_empty());
    }

    #[test]
    fn nondet_merge_respects_allow_and_test_scope() {
        let allowed =
            "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); } // lint:allow(nondet-merge)";
        assert!(rules_fired(allowed, &["nondet-merge"]).is_empty());
        let test = "#[test]\nfn t() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
        assert!(rules_fired(test, &["nondet-merge"]).is_empty());
    }

    #[test]
    fn unordered_float_sum_fires_on_bare_and_float_turbofish_sums() {
        let bare = "fn f(w: &[f64]) -> f64 { w.iter().sum() }";
        assert_eq!(
            rules_fired(bare, &["unordered-float-sum"]),
            [("unordered-float-sum", 1)]
        );
        let fish = "fn f(w: &[f64]) -> f64 { w.iter().copied().sum::<f64>() }";
        assert_eq!(
            rules_fired(fish, &["unordered-float-sum"]),
            [("unordered-float-sum", 1)]
        );
    }

    #[test]
    fn unordered_float_sum_exempts_integer_turbofish() {
        let src = "fn f(v: &[Vec<u32>]) -> usize { v.iter().map(Vec::len).sum::<usize>() }";
        assert!(rules_fired(src, &["unordered-float-sum"]).is_empty());
    }

    #[test]
    fn unordered_float_sum_fires_on_scalar_float_accumulators() {
        let src =
            "fn f(w: &[f64]) -> f64 {\n let mut acc = 0.0;\n for &x in w { acc += x; }\n acc\n}";
        assert_eq!(
            rules_fired(src, &["unordered-float-sum"]),
            [("unordered-float-sum", 3)]
        );
        let typed = "fn f(w: &[f64]) -> f64 {\n let mut acc: f64 = Default::default();\n for &x in w { acc += x; }\n acc\n}";
        assert_eq!(
            rules_fired(typed, &["unordered-float-sum"]),
            [("unordered-float-sum", 3)]
        );
    }

    #[test]
    fn unordered_float_sum_ignores_integer_and_indexed_accumulation() {
        let int =
            "fn f(v: &[usize]) -> usize {\n let mut acc = 0;\n for &x in v { acc += x; }\n acc\n}";
        assert!(rules_fired(int, &["unordered-float-sum"]).is_empty());
        let indexed = "fn f(w: &[f64], code: &[usize]) {\n let mut tot = vec![0.0; 4];\n for (i, &x) in w.iter().enumerate() { tot[code[i]] += x; }\n}";
        assert!(rules_fired(indexed, &["unordered-float-sum"]).is_empty());
    }

    #[test]
    fn unordered_float_sum_exempts_tests_and_allows() {
        let test = "#[test]\nfn t() { let w = [1.0]; let s: f64 = w.iter().sum(); }";
        assert!(rules_fired(test, &["unordered-float-sum"]).is_empty());
        let allowed = "fn f(w: &[f64]) -> f64 {\n // lint:allow(unordered-float-sum) — prefix sum, order fixed\n w.iter().sum()\n}";
        assert!(rules_fired(allowed, &["unordered-float-sum"]).is_empty());
    }

    #[test]
    fn telemetry_ungated_fires_without_enabled_gate() {
        let src = "fn f(sink: &dyn Sink) { sink.add(Counter::RowsScored, 1); }";
        assert_eq!(
            rules_fired(src, &["telemetry-ungated"]),
            [("telemetry-ungated", 1)]
        );
        let span = "fn f(s: &dyn Sink) { s.span_open(SpanKind::Fit); }";
        assert_eq!(
            rules_fired(span, &["telemetry-ungated"]),
            [("telemetry-ungated", 1)]
        );
    }

    #[test]
    fn telemetry_ungated_accepts_nearby_enabled_gate() {
        let gated = "fn f(sink: &dyn Sink) {\n if sink.enabled() {\n  sink.add(Counter::RowsScored, 1);\n }\n}";
        assert!(rules_fired(gated, &["telemetry-ungated"]).is_empty());
        let early_return = "fn f(sink: &dyn Sink) {\n if !sink.enabled() { return; }\n sink.add(Counter::RowsScored, 1);\n}";
        assert!(rules_fired(early_return, &["telemetry-ungated"]).is_empty());
    }

    #[test]
    fn telemetry_ungated_ignores_unrelated_add_calls() {
        let src = "fn f(set: &mut Acc) { set.add(1); }";
        assert!(rules_fired(src, &["telemetry-ungated"]).is_empty());
    }

    #[test]
    fn findings_carry_the_offending_snippet() {
        let src = "fn f(x: f64) -> bool {\n    x == 0.0\n}";
        let found = lint_file("t.rs", src, &ALL_RULES);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].snippet, "x == 0.0");
    }
}
