//! The four repo-specific lints, run over the token stream of one file.
//!
//! | rule          | fires on                                              |
//! |---------------|-------------------------------------------------------|
//! | `float-eq`    | `==` / `!=` with a float-literal operand              |
//! | `lib-unwrap`  | `.unwrap()` / `.expect(` in library (non-test) code   |
//! | `nondet-iter` | `HashMap` / `HashSet` in learner code paths           |
//! | `lossy-cast`  | bare `as` narrowing to u8/u16/u32/i8/i16/i32          |
//!
//! Test scope — any item under a `#[test]` or `#[cfg(test)]` attribute —
//! is exempt from `lib-unwrap`, `nondet-iter` and `lossy-cast` (tests may
//! panic and may cast freely); `float-eq` applies everywhere because exact
//! float assertions in tests are how PR 1's seed bugs slipped in. A finding
//! is suppressed by a `// lint:allow(<rule>)` comment on the same line or
//! the line directly above.

use crate::lexer::{lex, Kind, Token};

/// Names of every lint rule, in report order.
pub const ALL_RULES: [&str; 4] = ["float-eq", "lib-unwrap", "nondet-iter", "lossy-cast"];

/// One diagnostic: a rule firing at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (or fixture label) of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Integer types an `as` cast may silently truncate row/code arithmetic to.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Marks every token inside a `#[test]`- or `#[cfg(test)]`-attributed item.
///
/// The attribute's following item ends at the first `;` seen before any
/// block opens, otherwise at the matching `}` of the first `{` — which
/// covers `use`/`const` declarations, functions and whole `mod tests`
/// blocks. `#[cfg(not(test))]` does *not* mark test scope.
fn test_scope_mask(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if tokens[i].text != "#" || i + 1 >= n || tokens[i + 1].text != "[" {
            i += 1;
            continue;
        }
        // collect the attribute body up to its matching `]`
        let attr_start = i;
        let mut j = i + 1;
        let mut bracket_depth = 0;
        let mut has_test = false;
        let mut has_not = false;
        while j < n {
            match tokens[j].text.as_str() {
                "[" => bracket_depth += 1,
                "]" => {
                    bracket_depth -= 1;
                    if bracket_depth == 0 {
                        break;
                    }
                }
                "test" if tokens[j].kind == Kind::Ident => has_test = true,
                "not" if tokens[j].kind == Kind::Ident => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not {
            i = j + 1;
            continue;
        }
        // skip any further attributes, then span the item itself
        let mut k = j + 1;
        while k + 1 < n && tokens[k].text == "#" && tokens[k + 1].text == "[" {
            let mut depth = 0;
            k += 1;
            while k < n {
                match tokens[k].text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        let mut brace_depth = 0;
        let mut end = k;
        while end < n {
            match tokens[end].text.as_str() {
                ";" if brace_depth == 0 => break,
                "{" => brace_depth += 1,
                "}" => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        for m in mask.iter_mut().take((end + 1).min(n)).skip(attr_start) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

/// Lints `source` (labelled `file` in diagnostics) with the given subset of
/// [`ALL_RULES`]. Directives and test-scope exemptions are applied here, so
/// callers get only reportable findings.
pub fn lint_file(file: &str, source: &str, rules: &[&str]) -> Vec<Finding> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    let n = tokens.len();
    let in_test = test_scope_mask(tokens);
    let want = |r: &str| rules.contains(&r);
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        let allowed = lexed
            .allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line));
        if !allowed {
            findings.push(Finding {
                file: file.to_string(),
                line,
                rule,
                msg,
            });
        }
    };

    for i in 0..n {
        let t = &tokens[i];
        match t.kind {
            Kind::Punct if want("float-eq") && (t.text == "==" || t.text == "!=") => {
                let left_float = i > 0 && tokens[i - 1].kind == Kind::Float;
                let mut j = i + 1;
                if j < n && tokens[j].text == "-" {
                    j += 1; // unary minus: `== -1.0`
                }
                let right_float = j < n && tokens[j].kind == Kind::Float;
                if left_float || right_float {
                    push(
                        t.line,
                        "float-eq",
                        format!(
                            "exact float comparison `{}` against a float literal; \
                             use pnr_data::weights::approx (is_zero / approx_eq)",
                            t.text
                        ),
                    );
                }
            }
            Kind::Ident
                if want("lib-unwrap")
                    && !in_test[i]
                    && (t.text == "unwrap" || t.text == "expect")
                    && i > 0
                    && tokens[i - 1].text == "."
                    && i + 1 < n
                    && tokens[i + 1].text == "(" =>
            {
                push(
                    t.line,
                    "lib-unwrap",
                    format!(
                        "`.{}()` in library code; return a typed error or use a \
                         non-panicking pattern (`let … else`, `match`, `total_cmp`)",
                        t.text
                    ),
                );
            }
            _ => {}
        }
        if t.kind == Kind::Ident
            && want("nondet-iter")
            && !in_test[i]
            && (t.text == "HashMap" || t.text == "HashSet")
        {
            push(
                t.line,
                "nondet-iter",
                format!(
                    "`{}` iteration order is nondeterministic and can leak into rule \
                     ordering; use a Vec/BTreeMap or annotate lookup-only use",
                    t.text
                ),
            );
        }
        if t.kind == Kind::Ident
            && want("lossy-cast")
            && !in_test[i]
            && t.text == "as"
            && i + 1 < n
            && tokens[i + 1].kind == Kind::Ident
            && NARROW_INT_TYPES.contains(&tokens[i + 1].text.as_str())
        {
            push(
                t.line,
                "lossy-cast",
                format!(
                    "bare `as {}` narrowing can silently truncate; use \
                     pnr_data::index::to_u32 or TryFrom",
                    tokens[i + 1].text
                ),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_fired(src: &str, rules: &[&str]) -> Vec<(&'static str, usize)> {
        lint_file("t.rs", src, rules)
            .into_iter()
            .map(|f| (f.rule, f.line))
            .collect()
    }

    #[test]
    fn float_eq_fires_on_literal_comparisons() {
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == 0.0 }", &ALL_RULES),
            [("float-eq", 1)]
        );
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { 1e-9 != x }", &ALL_RULES),
            [("float-eq", 1)]
        );
        assert_eq!(
            rules_fired("fn f(x: f64) -> bool { x == -1.0 }", &ALL_RULES),
            [("float-eq", 1)]
        );
    }

    #[test]
    fn float_eq_ignores_int_and_var_comparisons() {
        assert!(rules_fired("fn f(x: u32) -> bool { x == 0 }", &ALL_RULES).is_empty());
        assert!(rules_fired("fn f(a: f64, b: f64) -> bool { a == b }", &ALL_RULES).is_empty());
        assert!(rules_fired(
            "fn f(x: f64) -> bool { x == f64::NEG_INFINITY }",
            &ALL_RULES
        )
        .is_empty());
    }

    #[test]
    fn float_eq_applies_even_in_tests() {
        let src = "#[cfg(test)]\nmod tests {\n fn t(x: f64) { assert!(x == 1.0); }\n}";
        assert_eq!(rules_fired(src, &ALL_RULES), [("float-eq", 3)]);
    }

    #[test]
    fn lib_unwrap_fires_outside_tests_only() {
        let lib = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_fired(lib, &["lib-unwrap"]), [("lib-unwrap", 1)]);
        let test = "#[cfg(test)]\nmod tests {\n fn t(x: Option<u32>) -> u32 { x.unwrap() }\n}";
        assert!(rules_fired(test, &["lib-unwrap"]).is_empty());
        let test_fn = "#[test]\nfn t() { Some(1).expect(\"x\"); }";
        assert!(rules_fired(test_fn, &["lib-unwrap"]).is_empty());
    }

    #[test]
    fn lib_unwrap_ignores_unwrap_or_family() {
        assert!(
            rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }", &ALL_RULES).is_empty()
        );
        assert!(rules_fired(
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0) }",
            &ALL_RULES
        )
        .is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_test_scope() {
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(rules_fired(src, &["lib-unwrap"]), [("lib-unwrap", 2)]);
    }

    #[test]
    fn nondet_iter_fires_on_hash_containers() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let fired = rules_fired(src, &["nondet-iter"]);
        assert_eq!(fired.len(), 3);
        assert!(fired.iter().all(|(r, _)| *r == "nondet-iter"));
    }

    #[test]
    fn lossy_cast_fires_on_narrowing_only() {
        assert_eq!(
            rules_fired("fn f(x: usize) -> u32 { x as u32 }", &["lossy-cast"]),
            [("lossy-cast", 1)]
        );
        assert!(rules_fired("fn f(x: u32) -> usize { x as usize }", &["lossy-cast"]).is_empty());
        assert!(rules_fired("fn f(x: u32) -> f64 { x as f64 }", &["lossy-cast"]).is_empty());
        assert!(rules_fired("use foo as bar;", &["lossy-cast"]).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_same_and_next_line() {
        let same = "fn f(x: f64) -> bool { x == 0.0 } // lint:allow(float-eq)";
        assert!(rules_fired(same, &ALL_RULES).is_empty());
        let above = "// lint:allow(float-eq)\nfn f(x: f64) -> bool { x == 0.0 }";
        assert!(rules_fired(above, &ALL_RULES).is_empty());
        let wrong_rule = "// lint:allow(lib-unwrap)\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_fired(wrong_rule, &ALL_RULES), [("float-eq", 2)]);
        let too_far = "// lint:allow(float-eq)\n\nfn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(rules_fired(too_far, &ALL_RULES), [("float-eq", 3)]);
    }

    #[test]
    fn rule_selection_is_respected() {
        let src = "fn f(x: Option<f64>) -> bool { x.unwrap() == 0.0 }";
        assert_eq!(rules_fired(src, &["float-eq"]), [("float-eq", 1)]);
        assert_eq!(rules_fired(src, &["lib-unwrap"]), [("lib-unwrap", 1)]);
        assert_eq!(rules_fired(src, &ALL_RULES).len(), 2);
    }
}
