//! A minimal Rust lexer: just enough token structure for the repo lints.
//!
//! `syn` is the usual tool for this job, but the workspace builds fully
//! offline against vendored stand-ins, so the lexer is hand-rolled. It
//! understands comments (nested block comments included), string/char
//! literals (raw strings with hash fences too), numeric literals with the
//! float/int distinction the `float-eq` lint depends on, identifiers and
//! multi-character operators. Everything it does not care about becomes a
//! one-character punctuation token.

/// What a token is, as far as the lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`foo`, `as`, `unwrap`).
    Ident,
    /// Floating-point literal (`1.0`, `1e9`, `3.14f64`, `1.`).
    Float,
    /// Integer literal (`42`, `0x1e9`, `1_000u32`).
    Int,
    /// Operator or punctuation (`==`, `!=`, `.`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// 1-based line the token starts on.
    pub line: usize,
    /// The token's kind.
    pub kind: Kind,
    /// The token text (operators keep their full spelling).
    pub text: String,
}

/// The lex of one file: the token stream plus every `lint:allow(rule)`
/// and `det:merge(ordering)` directive found in comments, as
/// `(line, payload)` pairs.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `// lint:allow(<rule>)` directives by comment line.
    pub allows: Vec<(usize, String)>,
    /// `// det:merge(<ordering>)` directives by comment line. The payload
    /// names the deterministic merge key a nearby parallel join uses
    /// (`lowest-attr-first`, …); the `nondet-merge` lint requires one on
    /// every `thread::scope`/`spawn` site in scope.
    pub det_merges: Vec<(usize, String)>,
}

/// Multi-character operators, longest first so matching is greedy.
const OPS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
]; // lint:allow(nondet-iter) — const array, not a hash container

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Extracts every `<marker>(<payload>)` occurrence in a comment body.
fn scan_directive(comment: &str, marker: &str, line: usize, out: &mut Vec<(usize, String)>) {
    let mut rest = comment;
    while let Some(pos) = rest.find(marker) {
        let tail = &rest[pos + marker.len()..];
        if let Some(end) = tail.find(')') {
            out.push((line, tail[..end].trim().to_string()));
            rest = &tail[end..];
        } else {
            break;
        }
    }
}

/// Extracts every `lint:allow(<rule>)` occurrence in a comment body.
fn scan_allows(comment: &str, line: usize, out: &mut Vec<(usize, String)>) {
    scan_directive(comment, "lint:allow(", line, out);
}

/// Extracts every `det:merge(<ordering>)` occurrence in a comment body.
fn scan_det_merges(comment: &str, line: usize, out: &mut Vec<(usize, String)>) {
    scan_directive(comment, "det:merge(", line, out);
}

/// Lexes `source` into tokens and allow-directives. Unterminated constructs
/// (string, block comment) consume to end of input rather than erroring:
/// the lints prefer a partial token stream over refusing the file.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0;
    let mut line = 1;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
            }
            i += 1;
        }};
    }

    while i < n {
        let c = chars[i];
        if c.is_whitespace() {
            bump!();
            continue;
        }
        // comments
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            let at_line = line;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let body: String = chars[start..i].iter().collect();
            scan_allows(&body, at_line, &mut out.allows);
            scan_det_merges(&body, at_line, &mut out.det_merges);
            continue;
        }
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let at_line = line;
            let mut depth = 1;
            bump!();
            bump!();
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    bump!();
                    bump!();
                } else {
                    bump!();
                }
            }
            let body: String = chars[start..i.min(n)].iter().collect();
            scan_allows(&body, at_line, &mut out.allows);
            scan_det_merges(&body, at_line, &mut out.det_merges);
            continue;
        }
        // raw strings: r"..."  r#"..."#  br##"..."##  — identifiers that
        // merely start with r/b (rows, break) fall through to ident lexing
        if c == 'r' || c == 'b' {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let mut hashes = 0;
            if j < n && chars[j] == 'r' {
                j += 1;
                while j + hashes < n && chars[j + hashes] == '#' {
                    hashes += 1;
                }
            } else {
                j = n + 1; // not a raw string
            }
            if j + hashes < n && chars[j + hashes] == '"' {
                while i < j + hashes {
                    bump!();
                }
                bump!(); // opening quote
                while i < n {
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && i + 1 + k < n && chars[i + 1 + k] == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            bump!();
                            for _ in 0..hashes {
                                bump!();
                            }
                            break;
                        }
                    }
                    bump!();
                }
                continue;
            }
        }
        // ordinary / byte strings
        if c == '"' || (c == 'b' && i + 1 < n && chars[i + 1] == '"') {
            if c == 'b' {
                bump!();
            }
            bump!(); // opening quote
            while i < n && chars[i] != '"' {
                if chars[i] == '\\' && i + 1 < n {
                    bump!();
                }
                bump!();
            }
            if i < n {
                bump!(); // closing quote
            }
            continue;
        }
        // char literal vs lifetime
        if c == '\'' {
            let is_lifetime =
                i + 1 < n && is_ident_start(chars[i + 1]) && !(i + 2 < n && chars[i + 2] == '\'');
            bump!();
            if is_lifetime {
                while i < n && is_ident_continue(chars[i]) {
                    bump!();
                }
            } else {
                while i < n && chars[i] != '\'' {
                    if chars[i] == '\\' && i + 1 < n {
                        bump!();
                    }
                    bump!();
                }
                if i < n {
                    bump!();
                }
            }
            continue;
        }
        // numbers
        if c.is_ascii_digit() {
            let at_line = line;
            let start = i;
            let mut kind = Kind::Int;
            if c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // fractional part: `.` makes a float unless it starts a
                // range (`0..n`) or a method call (`1.max(x)`)
                if i < n && chars[i] == '.' {
                    let next = chars.get(i + 1).copied();
                    let is_range = next == Some('.');
                    let is_method = next.map(is_ident_start).unwrap_or(false);
                    if !is_range && !is_method {
                        kind = Kind::Float;
                        i += 1;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // exponent: `1e9`, `1.5e-3`
                if i < n && matches!(chars[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < n && matches!(chars[j], '+' | '-') {
                        j += 1;
                    }
                    if j < n && chars[j].is_ascii_digit() {
                        kind = Kind::Float;
                        i = j;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // type suffix: `1.0f64`, `42u32`
                let suffix_start = i;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                let suffix: String = chars[suffix_start..i].iter().collect();
                if suffix.starts_with("f32") || suffix.starts_with("f64") {
                    kind = Kind::Float;
                }
            }
            out.tokens.push(Token {
                line: at_line,
                kind,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // identifiers and keywords
        if is_ident_start(c) {
            let at_line = line;
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            out.tokens.push(Token {
                line: at_line,
                kind: Kind::Ident,
                text: chars[start..i].iter().collect(),
            });
            continue;
        }
        // multi-character operators, greedily
        let mut matched = false;
        for op in OPS {
            let len = op.len();
            if i + len <= n && chars[i..i + len].iter().collect::<String>() == *op {
                out.tokens.push(Token {
                    line,
                    kind: Kind::Punct,
                    text: op.to_string(),
                });
                i += len;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Token {
            line,
            kind: Kind::Punct,
            text: c.to_string(),
        });
        bump!();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn float_vs_int_literals() {
        let toks = kinds("1.0 1e9 1.5e-3 3.14f64 1. 42 0x1e9 1_000 2f32 0..n 1.max(x)");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.0", "1e9", "1.5e-3", "3.14f64", "1.", "2f32"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["42", "0x1e9", "1_000", "0", "1"]);
    }

    #[test]
    fn range_is_not_a_float() {
        let toks = kinds("for i in 0..10 {}");
        assert!(toks.iter().any(|(k, t)| *k == Kind::Punct && t == ".."));
        assert!(toks.iter().all(|(k, _)| *k != Kind::Float));
    }

    #[test]
    fn comments_and_strings_are_skipped() {
        let toks = kinds("a /* 1.0 == 2.0 */ b // x == 1.0\n\"c == 1.0\" 'x' d");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "b", "d"]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "b"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds("a r#\"1.0 == \"2.0\"\"# b r\"x\" c");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["a", "b", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.iter().any(|(_, t)| t == "str"));
        assert!(toks.iter().any(|(_, t)| t == "char"));
    }

    #[test]
    fn operators_lex_greedily() {
        let toks = kinds("a == b != c => d");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, ["==", "!=", "=>"]);
    }

    #[test]
    fn allow_directives_are_collected() {
        let lexed = lex("let x = 1.0; // lint:allow(float-eq) — approved helper\nlet y = 2;\n// lint:allow(nondet-iter)\n");
        assert_eq!(
            lexed.allows,
            vec![(1, "float-eq".to_string()), (3, "nondet-iter".to_string())]
        );
    }

    #[test]
    fn det_merge_directives_are_collected() {
        let lexed = lex(
            "// det:merge(lowest-attr-first)\nthread::scope(|s| {});\n/* det:merge(rule-index) */\n",
        );
        assert_eq!(
            lexed.det_merges,
            vec![
                (1, "lowest-attr-first".to_string()),
                (3, "rule-index".to_string())
            ]
        );
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let lexed = lex("a\n/* two\nlines */\nb\n\"str\nacross\"\nc");
        let by_text: Vec<(usize, &str)> = lexed
            .tokens
            .iter()
            .map(|t| (t.line, t.text.as_str()))
            .collect();
        assert_eq!(by_text, [(1, "a"), (4, "b"), (7, "c")]);
    }
}
