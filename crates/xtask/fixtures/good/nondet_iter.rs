//! Nothing here may produce a `nondet-iter` finding.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

pub fn build() -> BTreeMap<u32, f64> {
    BTreeMap::new()
}

pub fn dedupe(rows: &[u32]) -> BTreeSet<u32> {
    rows.iter().copied().collect()
}

pub fn sorted_vec(mut rows: Vec<u32>) -> Vec<u32> {
    rows.sort_unstable();
    rows.dedup();
    rows
}

use std::collections::HashMap; // lint:allow(nondet-iter) — lookup table only

pub struct Interner {
    // lint:allow(nondet-iter) — iteration always walks `values` in order
    index: HashMap<String, u32>,
    values: Vec<String>,
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    pub fn tests_may_hash(rows: &[u32]) -> HashSet<u32> {
        rows.iter().copied().collect()
    }
}
