//! Nothing here may produce a `float-eq` finding.

pub fn int_compare(n: u32) -> bool {
    n == 0
}

pub fn var_compare(a: f64, b: f64) -> bool {
    a == b // not flagged: no literal operand (approx_eq is still preferred)
}

pub fn named_constant(s: f64) -> bool {
    s == f64::NEG_INFINITY
}

pub fn ordering(w: f64) -> bool {
    w >= 0.0 && w < 1.0
}

pub fn range_not_float(n: usize) -> usize {
    (0..n).sum::<usize>()
}

pub fn allowed(w: f64) -> bool {
    w == 0.0 // lint:allow(float-eq) — fixture-approved exact comparison
}

pub fn in_string() -> &'static str {
    "w == 0.0"
}

// a comment mentioning w == 1.0 is not code
pub fn in_comment(w: f64) -> f64 {
    w
}
