//! Nothing here may produce a `lib-unwrap` finding.

pub fn fallback(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

pub fn lazy_fallback(x: Option<u32>) -> u32 {
    x.unwrap_or_else(|| 0)
}

pub fn defaulted(x: Option<u32>) -> u32 {
    x.unwrap_or_default()
}

pub fn matched(x: Option<u32>) -> u32 {
    match x {
        Some(v) => v,
        None => 0,
    }
}

pub fn allowed(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(lib-unwrap) — fixture-approved panic
}

#[cfg(test)]
mod tests {
    pub fn tests_may_panic(x: Option<u32>) -> u32 {
        x.unwrap()
    }

    #[test]
    fn a_test() {
        assert_eq!(Some(3).expect("three"), 3);
    }
}

#[test]
fn bare_test_attribute() {
    Some(1).unwrap();
}
