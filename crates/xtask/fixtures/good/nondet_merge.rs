//! Nothing here may produce a `nondet-merge` finding.

pub fn annotated_scope(xs: &[f64]) -> Vec<usize> {
    let mut out = Vec::new();
    // workers push results keyed by chunk index, merged ascending:
    // det:merge(chunk-index-order)
    std::thread::scope(|s| {
        let handles: Vec<_> = xs.chunks(2).map(|c| s.spawn(move || c.len())).collect();
        for h in handles {
            if let Ok(v) = h.join() {
                out.push(v);
            }
        }
    });
    out
}

pub fn annotated_spawn() -> std::thread::JoinHandle<u64> {
    // det:merge(single-producer)
    std::thread::spawn(|| 7)
}

pub fn allowed_scope() {
    // lint:allow(nondet-merge) — fixture-approved side-effect-free scope
    std::thread::scope(|s| {
        s.spawn(|| ());
    });
}

pub fn scope_is_just_a_word() -> usize {
    let scope = 3;
    scope
}

#[cfg(test)]
mod tests {
    pub fn spawn_in_tests_is_exempt() {
        let h = std::thread::spawn(|| ());
        let _ = h.join();
    }
}
