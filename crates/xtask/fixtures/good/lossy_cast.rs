//! Nothing here may produce a `lossy-cast` finding.

pub fn widen(row: u32) -> usize {
    row as usize
}

pub fn to_float(row: u32) -> f64 {
    row as f64
}

pub fn checked(row: usize) -> u32 {
    u32::try_from(row).unwrap_or(u32::MAX)
}

pub use std::collections::BTreeMap as Map;

pub fn allowed(row: usize) -> u32 {
    row as u32 // lint:allow(lossy-cast) — fixture-approved narrowing
}

#[cfg(test)]
mod tests {
    pub fn tests_may_cast(row: usize) -> u32 {
        row as u32
    }
}
