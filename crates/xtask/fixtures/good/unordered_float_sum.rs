//! Nothing here may produce an `unordered-float-sum` finding.

pub fn integer_turbofish(ns: &[usize]) -> usize {
    ns.iter().sum::<usize>()
}

pub fn routed_through_ordered_sum(xs: &[f64]) -> f64 {
    pnr_data::weights::ordered_sum(xs.iter().copied())
}

pub fn integer_accumulator(ns: &[usize]) -> usize {
    let mut count = 0;
    for &x in ns {
        count += x;
    }
    count
}

pub fn allowed_accumulator(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x; // lint:allow(unordered-float-sum) — fixture-approved fixed slice order
    }
    acc
}

#[cfg(test)]
mod tests {
    pub fn test_scope_is_exempt(xs: &[f64]) -> f64 {
        xs.iter().sum()
    }
}
