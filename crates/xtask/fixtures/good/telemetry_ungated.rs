//! Nothing here may produce a `telemetry-ungated` finding.

pub fn allowed_one_shot(sink: &dyn Sink) {
    sink.add(Counter::Startup, 1); // lint:allow(telemetry-ungated) — one-shot init counter
}

pub fn other_receiver_named_add(set: &mut IndexSet) {
    // `add` on a non-sink receiver is not a telemetry call
    set.add(3);
}

pub fn gated_counter(sink: &dyn Sink) {
    if sink.enabled() {
        sink.add(Counter::CacheHits, 1);
    }
}

pub fn gated_span(telemetry: &Telemetry) {
    if telemetry.enabled() {
        let _g = telemetry.span_open(Phase::Grow);
    }
}

#[cfg(test)]
mod tests {
    pub fn test_scope_is_exempt(sink: &dyn Sink) {
        sink.add(Counter::CacheHits, 1);
        sink.span_open(Phase::Grow);
    }
}
