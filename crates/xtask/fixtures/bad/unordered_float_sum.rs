//! Every line marked BAD must produce exactly one `unordered-float-sum`
//! finding.

pub fn bare_sum(xs: &[f64]) -> f64 {
    xs.iter().sum() // BAD
}

pub fn float_turbofish(xs: &[f64]) -> f64 {
    xs.iter().copied().sum::<f64>() // BAD
}

pub fn opaque_integer_sum(ns: &[usize]) -> usize {
    // a bare sum is flagged even over integers: the lexer cannot see the
    // element type, so integer sums must say so with a turbofish
    ns.iter().sum() // BAD
}

pub fn untyped_accumulator(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for &x in xs {
        acc += x; // BAD
    }
    acc
}

pub fn ascribed_accumulator(xs: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    for &x in xs {
        total += x; // BAD
    }
    total
}
