//! Every line marked BAD must produce exactly one `telemetry-ungated`
//! finding. No `enabled()` call may appear within ten lines above a BAD
//! line — that proximity is exactly what the lint accepts as a gate.

pub fn ungated_counter(sink: &dyn Sink) {
    sink.add(Counter::CacheHits, 1); // BAD
}

pub fn ungated_span(telemetry: &Telemetry) -> SpanGuard {
    telemetry.span_open(Phase::Grow) // BAD
}

pub fn ungated_pair(sink: &dyn Sink) {
    sink.add(Counter::RulesEmitted, 1); // BAD
    sink.span_open(Phase::Prune); // BAD
}
