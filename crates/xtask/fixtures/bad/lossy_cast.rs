//! Every line marked BAD must produce exactly one `lossy-cast` finding.

pub fn row_id(row: usize) -> u32 {
    row as u32 // BAD
}

pub fn tiny(row: usize) -> u8 {
    row as u8 // BAD
}

pub fn signed(delta: i64) -> i32 {
    delta as i32 // BAD
}

pub fn in_range_loop(n: usize) -> u32 {
    (0..n as u32).sum() // BAD
}

pub fn short(code: u64) -> u16 {
    code as u16 // BAD
}
