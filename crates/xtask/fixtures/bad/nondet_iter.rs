//! Every line marked BAD must produce `nondet-iter` findings (one per
//! HashMap/HashSet token).

use std::collections::HashMap; // BAD
use std::collections::HashSet; // BAD

pub fn build() -> HashMap<u32, f64> { // BAD
    HashMap::new() // BAD
}

pub fn dedupe(rows: &[u32]) -> HashSet<u32> { // BAD
    rows.iter().copied().collect::<HashSet<u32>>() // BAD
}
