//! Every line marked BAD must produce exactly one `nondet-merge` finding.

pub fn unannotated_scope(xs: &[f64]) -> f64 {
    let best = f64::NEG_INFINITY;
    std::thread::scope(|s| { // BAD
        for chunk in xs.chunks(2) {
            s.spawn(move || chunk.iter().copied().fold(f64::NEG_INFINITY, f64::max));
        }
    });
    best
}

pub fn standalone_spawn() -> i32 {
    let h = std::thread::spawn(|| 1 + 1); // BAD
    match h.join() {
        Ok(v) => v,
        Err(_) => 0,
    }
}

// det:merge(stale-directive-too-far-away)
//
//
pub fn directive_out_of_range() {
    std::thread::scope(|s| { // BAD
        s.spawn(|| ());
    });
}
