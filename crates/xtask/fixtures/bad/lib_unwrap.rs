//! Every line marked BAD must produce exactly one `lib-unwrap` finding.

pub fn direct(x: Option<u32>) -> u32 {
    x.unwrap() // BAD
}

pub fn with_message(x: Option<u32>) -> u32 {
    x.expect("present") // BAD
}

pub fn chained(x: Option<Option<u32>>) -> u32 {
    x.unwrap().unwrap() // BAD  (two findings)
}

#[cfg(not(test))]
pub fn not_test_is_library(x: Option<u32>) -> u32 {
    x.unwrap() // BAD
}
