//! Every line marked BAD must produce exactly one `float-eq` finding.

pub fn zero_check(w: f64) -> bool {
    w == 0.0 // BAD
}

pub fn not_one(w: f64) -> bool {
    w != 1.0 // BAD
}

pub fn exp_form(w: f64) -> bool {
    w == 1e-9 // BAD
}

pub fn literal_left(w: f64) -> bool {
    0.5 == w // BAD
}

pub fn negative_literal(w: f64) -> bool {
    w == -1.0 // BAD
}

pub fn suffixed(w: f64) -> bool {
    w != 2.5f64 // BAD
}

#[cfg(test)]
mod tests {
    // float-eq applies in test scope too
    pub fn asserted(w: f64) {
        assert!(w == 0.25); // BAD
    }
}
