//! End-to-end exit-code contract of the `xtask` binary:
//! 0 = clean tree, 1 = findings, 2 = usage error.

use std::path::{Path, PathBuf};
use std::process::Command;

fn xtask() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
}

/// Builds a throwaway workspace-shaped tree under `CARGO_TARGET_TMPDIR`.
fn scratch_tree(name: &str, source: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/data/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch tree");
    std::fs::write(src.join("lib.rs"), source).expect("write scratch lib.rs");
    root
}

#[test]
fn clean_tree_exits_zero() {
    let root = scratch_tree("xtask-clean", "pub fn ok(w: f64) -> bool { w > 0.0 }\n");
    let status = xtask()
        .args(["lint", root.to_str().unwrap()])
        .status()
        .expect("run xtask");
    assert_eq!(status.code(), Some(0));
}

#[test]
fn findings_exit_one_and_print_diagnostics() {
    let root = scratch_tree(
        "xtask-dirty",
        "pub fn bad(w: f64) -> bool { w == 0.0 }\npub fn also(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    let out = xtask()
        .args(["lint", root.to_str().unwrap()])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/data/src/lib.rs:1: [float-eq]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/data/src/lib.rs:2: [lib-unwrap]"),
        "{stdout}"
    );
}

#[test]
fn json_mode_prints_one_flat_object_per_finding() {
    let root = scratch_tree("xtask-json", "pub fn bad(w: f64) -> bool { w == 0.0 }\n");
    let out = xtask()
        .args(["lint", "--json", root.to_str().unwrap()])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "{stdout}");
    let line = lines[0];
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    assert!(line.contains("\"rule\":\"float-eq\""), "{line}");
    assert!(
        line.contains("\"path\":\"crates/data/src/lib.rs\""),
        "{line}"
    );
    assert!(line.contains("\"line\":1"), "{line}");
    assert!(
        line.contains("\"snippet\":\"pub fn bad(w: f64) -> bool { w == 0.0 }\""),
        "{line}"
    );
}

#[test]
fn scopes_reports_a_crate_missing_from_the_roster() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("xtask-scopes-unknown");
    let src = root.join("crates/mystery/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch tree");
    std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").expect("write scratch lib.rs");
    let out = xtask()
        .args(["scopes", root.to_str().unwrap()])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("mystery"), "{stdout}");
}

#[test]
fn scopes_pass_is_clean_on_the_real_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = xtask()
        .args(["scopes", root.to_str().unwrap()])
        .output()
        .expect("run xtask");
    assert_eq!(
        out.status.code(),
        Some(0),
        "scope drift:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn determinism_rejects_tiny_row_counts_as_usage_error() {
    let out = xtask()
        .args(["determinism", "10"])
        .output()
        .expect("run xtask");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rows must be"), "{stderr}");
}

#[test]
fn determinism_sweep_exits_zero_and_reports_nine_fits() {
    let out = xtask()
        .args(["determinism", "300"])
        .output()
        .expect("run xtask");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "{stdout}\n{stderr}");
    assert!(stderr.contains("all 9 fits bit-identical"), "{stderr}");
    assert_eq!(
        stdout.lines().filter(|l| l.contains("workers=")).count(),
        9,
        "{stdout}"
    );
}

#[test]
fn unknown_command_exits_two() {
    let status = xtask().arg("frobnicate").status().expect("run xtask");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn missing_command_exits_two() {
    let status = xtask().status().expect("run xtask");
    assert_eq!(status.code(), Some(2));
}

#[test]
fn real_workspace_is_clean() {
    // CARGO_MANIFEST_DIR = crates/xtask → repo root is two levels up
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let out = xtask()
        .args(["lint", root.to_str().unwrap()])
        .output()
        .expect("run xtask");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace lint not clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
