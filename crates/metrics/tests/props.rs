//! Property-based tests for the metric algebra.

use pnr_metrics::{BinaryConfusion, MulticlassConfusion};
use proptest::prelude::*;

fn cells() -> impl Strategy<Value = (f64, f64, f64, f64)> {
    (0.0f64..1e5, 0.0f64..1e5, 0.0f64..1e5, 0.0f64..1e5)
}

proptest! {
    #[test]
    fn rates_are_bounded((tp, fp, fn_, tn) in cells()) {
        let cm = BinaryConfusion::from_counts(tp, fp, fn_, tn);
        for v in [cm.recall(), cm.precision(), cm.f_measure(), cm.accuracy(),
                  cm.false_positive_rate()] {
            prop_assert!((0.0..=1.0).contains(&v), "rate {v} out of bounds");
        }
    }

    #[test]
    fn f_is_between_min_and_max_of_r_p((tp, fp, fn_, tn) in cells()) {
        let cm = BinaryConfusion::from_counts(tp, fp, fn_, tn);
        let (r, p, f) = (cm.recall(), cm.precision(), cm.f_measure());
        // The harmonic mean lies between min and max: when either rate is
        // zero F is zero (= min); otherwise 2rp/(r+p) ≥ min because
        // 2·max/(min+max) ≥ 1, and ≤ max symmetrically.
        prop_assert!(f <= r.max(p) + 1e-12);
        if r > 0.0 && p > 0.0 {
            prop_assert!(f + 1e-12 >= r.min(p));
        } else {
            prop_assert_eq!(f, 0.0);
        }
    }

    #[test]
    fn f_beta_interpolates_r_and_p((tp, fp, fn_, tn) in cells()) {
        let cm = BinaryConfusion::from_counts(tp + 1.0, fp, fn_, tn);
        // β→∞ approaches recall; β→0 approaches precision
        prop_assert!((cm.f_beta(1e6) - cm.recall()).abs() < 1e-3);
        prop_assert!((cm.f_beta(1e-6) - cm.precision()).abs() < 1e-3);
    }

    #[test]
    fn merge_equals_joint_recording(
        a in prop::collection::vec((prop::bool::ANY, prop::bool::ANY, 0.1f64..10.0), 0..30),
        b in prop::collection::vec((prop::bool::ANY, prop::bool::ANY, 0.1f64..10.0), 0..30),
    ) {
        let mut left = BinaryConfusion::new();
        let mut right = BinaryConfusion::new();
        let mut joint = BinaryConfusion::new();
        for &(actual, pred, w) in &a {
            left.record(actual, pred, w);
            joint.record(actual, pred, w);
        }
        for &(actual, pred, w) in &b {
            right.record(actual, pred, w);
            joint.record(actual, pred, w);
        }
        left.merge(&right);
        prop_assert!((left.tp - joint.tp).abs() < 1e-9);
        prop_assert!((left.total() - joint.total()).abs() < 1e-9);
    }

    #[test]
    fn multiclass_binary_view_consistent(
        records in prop::collection::vec((0usize..4, 0usize..4, 0.1f64..5.0), 1..60),
    ) {
        let mut m = MulticlassConfusion::new(4);
        for &(actual, pred, w) in &records {
            m.record(actual, pred, w);
        }
        for class in 0..4 {
            let b = m.binary_for(class);
            prop_assert!((b.total() - m.total()).abs() < 1e-9);
            // tp of the view equals the diagonal cell
            prop_assert!((b.tp - m.cell(class, class)).abs() < 1e-9);
        }
        prop_assert!((0.0..=1.0).contains(&m.accuracy()));
        prop_assert!((0.0..=1.0).contains(&m.macro_f()));
    }

    #[test]
    fn accuracy_can_mislead_on_rare_classes(tn in 1e3f64..1e6, fn_ in 1.0f64..50.0) {
        // the paper's motivating identity: predict-all-negative has high
        // accuracy but F = 0 whenever the class is rare
        let cm = BinaryConfusion::from_counts(0.0, 0.0, fn_, tn);
        prop_assert!(cm.accuracy() > 0.9);
        prop_assert_eq!(cm.f_measure(), 0.0);
    }
}
