//! Score-based evaluation: precision-recall curves, AUC-PR, and best-F
//! threshold selection.
//!
//! PNrule's ScoreMatrix makes the classifier score-valued ("we predict the
//! record to be True with certain score in the interval (0%,100%)"), and
//! the paper notes the decision threshold is "usually 50%". This module
//! turns scored predictions into the full recall/precision trade-off curve,
//! which is the natural lens for rare classes (ROC curves are inflated by
//! the huge negative class).

use crate::binary::PrfReport;
use pnr_data::weights::approx;

/// One operating point of a scored classifier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Score threshold: predictions are positive when `score > threshold`.
    pub threshold: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// Precision at the threshold.
    pub precision: f64,
    /// F-measure at the threshold.
    pub f: f64,
}

/// A precision-recall curve computed from `(score, actual_positive, weight)`
/// triples.
#[derive(Debug, Clone, Default)]
pub struct PrCurve {
    points: Vec<CurvePoint>,
}

impl PrCurve {
    /// Builds the curve: one operating point per distinct score, ordered by
    /// descending threshold (ascending recall).
    pub fn from_scored(mut scored: Vec<(f64, bool, f64)>) -> PrCurve {
        assert!(
            scored.iter().all(|(s, _, w)| s.is_finite() && *w >= 0.0),
            "scores must be finite and weights non-negative"
        );
        let pos_total: f64 = scored
            .iter()
            .filter(|(_, p, _)| *p)
            .map(|(_, _, w)| w)
            .sum();
        if approx::is_zero(pos_total) || scored.is_empty() {
            return PrCurve::default();
        }
        // descending by score (total_cmp: scores were asserted finite above)
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut points = Vec::new();
        let mut tp = 0.0;
        let mut fp = 0.0;
        let mut i = 0;
        while i < scored.len() {
            let s = scored[i].0;
            // absorb the whole tie group: the threshold sits just below it
            while i < scored.len() && scored[i].0 == s {
                let (_, p, w) = scored[i];
                if p {
                    tp += w;
                } else {
                    fp += w;
                }
                i += 1;
            }
            let recall = tp / pos_total;
            let precision = if approx::is_zero(tp + fp) {
                0.0
            } else {
                tp / (tp + fp)
            };
            let f = if approx::is_zero(recall + precision) {
                0.0
            } else {
                2.0 * recall * precision / (recall + precision)
            };
            points.push(CurvePoint {
                threshold: s,
                recall,
                precision,
                f,
            });
        }
        PrCurve { points }
    }

    /// The curve's operating points (descending threshold).
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// True when no positives were present.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Area under the precision-recall curve (step-wise interpolation, the
    /// conservative convention).
    pub fn auc_pr(&self) -> f64 {
        let mut auc = 0.0;
        let mut prev_recall = 0.0;
        for p in &self.points {
            auc += (p.recall - prev_recall) * p.precision;
            prev_recall = p.recall;
        }
        auc
    }

    /// The operating point with the highest F-measure.
    pub fn best_f_point(&self) -> Option<CurvePoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.f.partial_cmp(&b.f).expect("finite F"))
    }

    /// The report at decision rule `score > threshold`: the last operating
    /// point whose threshold exceeds the requested one, or `None` when no
    /// score clears it.
    pub fn report_at(&self, threshold: f64) -> Option<PrfReport> {
        self.points
            .iter()
            .rfind(|p| p.threshold > threshold)
            .map(|p| PrfReport {
                recall: p.recall,
                precision: p.precision,
                f: p.f,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> Vec<(f64, bool, f64)> {
        vec![
            (0.9, true, 1.0),
            (0.8, true, 1.0),
            (0.2, false, 1.0),
            (0.1, false, 1.0),
        ]
    }

    #[test]
    fn perfect_ranking_has_auc_one() {
        let c = PrCurve::from_scored(perfect());
        assert!((c.auc_pr() - 1.0).abs() < 1e-12, "auc {}", c.auc_pr());
        let best = c.best_f_point().unwrap();
        assert_eq!(best.f, 1.0);
        assert_eq!(best.recall, 1.0);
    }

    #[test]
    fn reversed_ranking_has_low_auc() {
        let c = PrCurve::from_scored(vec![
            (0.9, false, 1.0),
            (0.8, false, 1.0),
            (0.2, true, 1.0),
            (0.1, true, 1.0),
        ]);
        assert!(c.auc_pr() < 0.6, "auc {}", c.auc_pr());
    }

    #[test]
    fn curve_recall_is_monotone_nondecreasing() {
        let c = PrCurve::from_scored(vec![
            (0.9, true, 1.0),
            (0.7, false, 2.0),
            (0.7, true, 1.0),
            (0.4, true, 3.0),
            (0.2, false, 1.0),
        ]);
        for w in c.points().windows(2) {
            assert!(w[0].recall <= w[1].recall + 1e-12);
            assert!(w[0].threshold > w[1].threshold);
        }
        let last = c.points().last().unwrap();
        assert!(
            (last.recall - 1.0).abs() < 1e-12,
            "curve must end at full recall"
        );
    }

    #[test]
    fn ties_are_absorbed_into_one_point() {
        let c = PrCurve::from_scored(vec![(0.5, true, 1.0), (0.5, false, 1.0), (0.5, true, 1.0)]);
        assert_eq!(c.points().len(), 1);
        let p = c.points()[0];
        assert_eq!(p.recall, 1.0);
        assert!((p.precision - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_scale_contributions() {
        let c = PrCurve::from_scored(vec![
            (0.9, true, 10.0),
            (0.8, false, 10.0),
            (0.7, true, 30.0),
        ]);
        // after the first point: tp=10 of 40 → recall 0.25
        assert!((c.points()[0].recall - 0.25).abs() < 1e-12);
    }

    #[test]
    fn no_positives_gives_empty_curve() {
        let c = PrCurve::from_scored(vec![(0.9, false, 1.0)]);
        assert!(c.is_empty());
        assert_eq!(c.auc_pr(), 0.0);
        assert!(c.best_f_point().is_none());
    }

    #[test]
    fn best_f_beats_default_threshold_sometimes() {
        // all scores below 0.5: the default threshold predicts nothing, but
        // the curve still finds the ranking's best operating point
        let c = PrCurve::from_scored(vec![(0.4, true, 1.0), (0.3, true, 1.0), (0.1, false, 5.0)]);
        let best = c.best_f_point().unwrap();
        assert_eq!(best.f, 1.0);
        assert!(best.threshold < 0.5);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_scores_rejected() {
        PrCurve::from_scored(vec![(f64::NAN, true, 1.0)]);
    }
}
