//! Evaluation metrics for rare-class classification.
//!
//! The paper evaluates every classifier with **recall**, **precision** and
//! the balanced **F-measure** `F = 2RP/(R+P)` (van Rijsbergen's F with equal
//! weights), because plain accuracy is meaningless when the target class is
//! a fraction of a percent of the data. This crate provides weighted binary
//! confusion matrices, the derived rates, the general F<sub>β</sub> family,
//! multiclass confusion matrices, and plain-text report rendering used by
//! the experiment harness.
//!
//! # Example
//!
//! ```
//! use pnr_metrics::BinaryConfusion;
//!
//! let mut cm = BinaryConfusion::new();
//! // (actual_positive, predicted_positive, weight)
//! cm.record(true, true, 1.0);
//! cm.record(true, false, 1.0);
//! cm.record(false, true, 1.0);
//! cm.record(false, false, 7.0);
//! assert_eq!(cm.recall(), 0.5);
//! assert_eq!(cm.precision(), 0.5);
//! assert_eq!(cm.f_measure(), 0.5);
//! ```

mod binary;
mod curve;
mod multiclass;
mod report;

pub use binary::{BinaryConfusion, PrfReport};
pub use curve::{CurvePoint, PrCurve};
pub use multiclass::MulticlassConfusion;
pub use report::{format_prf_row, format_prf_table, PrfRow};
