//! Plain-text rendering of result tables in the paper's format.

use crate::binary::PrfReport;

/// One labelled row of a recall/precision/F table.
#[derive(Debug, Clone, PartialEq)]
pub struct PrfRow {
    /// Row label, e.g. a classifier abbreviation (`C`, `Re`, `P`).
    pub label: String,
    /// The metrics for this row.
    pub report: PrfReport,
}

impl PrfRow {
    /// Builds a row.
    pub fn new(label: impl Into<String>, report: PrfReport) -> Self {
        PrfRow {
            label: label.into(),
            report,
        }
    }
}

/// Formats one row the way the paper prints results: recall and precision as
/// percentages with two decimals, F as a bare fraction with four decimals
/// (e.g. `PNrule  95.21  99.44  .9728`).
pub fn format_prf_row(row: &PrfRow) -> String {
    format!(
        "{:<12} {:>6.2} {:>6.2}  {}",
        row.label,
        row.report.recall * 100.0,
        row.report.precision * 100.0,
        format_f(row.report.f),
    )
}

/// Formats an F value like the paper: `.9728`, with `1.0000` for a perfect
/// score.
pub fn format_f(f: f64) -> String {
    let s = format!("{f:.4}");
    match s.strip_prefix("0") {
        Some(rest) => rest.to_string(),
        None => s,
    }
}

/// Renders a table with a title and header, one line per row, and a `*`
/// marking the best F (ties marked on every best row) — the textual
/// equivalent of the paper's bold-faced best-classifier convention.
pub fn format_prf_table(title: &str, rows: &[PrfRow]) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!(
        "{:<12} {:>6} {:>6}  {:>6}\n",
        "model", "Rec", "Prec", "F"
    ));
    let best = rows
        .iter()
        .map(|r| r.report.f)
        .fold(f64::NEG_INFINITY, f64::max);
    for row in rows {
        out.push_str(&format_prf_row(row));
        if rows.len() > 1 && (row.report.f - best).abs() < 1e-12 {
            out.push_str(" *");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(r: f64, p: f64) -> PrfReport {
        let f = if pnr_data::weights::approx::is_zero(r + p) {
            0.0
        } else {
            2.0 * r * p / (r + p)
        };
        PrfReport {
            recall: r,
            precision: p,
            f,
        }
    }

    #[test]
    fn row_formats_percentages_and_f() {
        let row = PrfRow::new("PNrule", rep(0.9521, 0.9944));
        let s = format_prf_row(&row);
        assert!(s.contains("95.21"), "{s}");
        assert!(s.contains("99.44"), "{s}");
        assert!(s.contains(".9728"), "{s}");
    }

    #[test]
    fn f_formatting_strips_leading_zero() {
        assert_eq!(format_f(0.9728), ".9728");
        assert_eq!(format_f(0.0), ".0000");
        assert_eq!(format_f(1.0), "1.0000");
    }

    #[test]
    fn table_marks_best_f() {
        let rows = vec![
            PrfRow::new("A", rep(0.5, 0.5)),
            PrfRow::new("B", rep(0.9, 0.9)),
        ];
        let t = format_prf_table("demo", &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[2].starts_with("A"));
        assert!(!lines[2].ends_with('*'));
        assert!(lines[3].starts_with("B"));
        assert!(lines[3].ends_with('*'));
    }

    #[test]
    fn single_row_table_is_unstarred() {
        let rows = vec![PrfRow::new("only", rep(0.4, 0.4))];
        let t = format_prf_table("demo", &rows);
        assert!(!t.contains('*'));
    }
}
