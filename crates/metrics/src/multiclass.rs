//! Weighted multiclass confusion matrix.

use crate::binary::BinaryConfusion;
use pnr_data::weights::approx;
use serde::{Deserialize, Serialize};

/// A weighted `k × k` confusion matrix. `cell(actual, predicted)` holds the
/// accumulated weight of records of class `actual` predicted as `predicted`.
///
/// The PNrule framework reduces multiclass problems to one binary task per
/// class; [`MulticlassConfusion::binary_for`] recovers each task's 2×2 view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MulticlassConfusion {
    n_classes: usize,
    cells: Vec<f64>, // row-major [actual][predicted]
}

impl MulticlassConfusion {
    /// An empty matrix over `n_classes` classes.
    pub fn new(n_classes: usize) -> Self {
        assert!(n_classes > 0, "need at least one class");
        MulticlassConfusion {
            n_classes,
            cells: vec![0.0; n_classes * n_classes],
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Records one example.
    ///
    /// # Panics
    /// Panics if either class index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize, weight: f64) {
        assert!(actual < self.n_classes && predicted < self.n_classes);
        self.cells[actual * self.n_classes + predicted] += weight;
    }

    /// The accumulated weight in cell `(actual, predicted)`.
    pub fn cell(&self, actual: usize, predicted: usize) -> f64 {
        self.cells[actual * self.n_classes + predicted]
    }

    /// Total recorded weight.
    pub fn total(&self) -> f64 {
        self.cells.iter().sum()
    }

    /// Overall accuracy (trace / total).
    pub fn accuracy(&self) -> f64 {
        let correct: f64 = (0..self.n_classes).map(|c| self.cell(c, c)).sum();
        let total = self.total();
        if approx::is_zero(total) {
            0.0
        } else {
            correct / total
        }
    }

    /// The one-vs-rest binary view for `class`.
    pub fn binary_for(&self, class: usize) -> BinaryConfusion {
        assert!(class < self.n_classes);
        let mut b = BinaryConfusion::new();
        for actual in 0..self.n_classes {
            for predicted in 0..self.n_classes {
                let w = self.cell(actual, predicted);
                b.record(actual == class, predicted == class, w);
            }
        }
        b
    }

    /// Unweighted macro-averaged F-measure over all classes.
    pub fn macro_f(&self) -> f64 {
        let sum: f64 = (0..self.n_classes)
            .map(|c| self.binary_for(c).f_measure())
            .sum();
        sum / self.n_classes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_cell_access() {
        let mut m = MulticlassConfusion::new(3);
        m.record(0, 1, 2.0);
        m.record(0, 1, 1.0);
        m.record(2, 2, 5.0);
        assert_eq!(m.cell(0, 1), 3.0);
        assert_eq!(m.cell(2, 2), 5.0);
        assert_eq!(m.total(), 8.0);
    }

    #[test]
    fn accuracy_is_trace_over_total() {
        let mut m = MulticlassConfusion::new(2);
        m.record(0, 0, 3.0);
        m.record(1, 1, 1.0);
        m.record(1, 0, 4.0);
        assert_eq!(m.accuracy(), 0.5);
    }

    #[test]
    fn binary_view_aggregates_rest() {
        let mut m = MulticlassConfusion::new(3);
        // class 0 is the "target"
        m.record(0, 0, 2.0); // tp
        m.record(0, 1, 1.0); // fn
        m.record(1, 0, 3.0); // fp
        m.record(1, 2, 4.0); // tn
        m.record(2, 1, 5.0); // tn
        let b = m.binary_for(0);
        assert_eq!(b.tp, 2.0);
        assert_eq!(b.fn_, 1.0);
        assert_eq!(b.fp, 3.0);
        assert_eq!(b.tn, 9.0);
    }

    #[test]
    fn macro_f_averages_classes() {
        let mut m = MulticlassConfusion::new(2);
        m.record(0, 0, 1.0);
        m.record(1, 1, 1.0);
        assert!((m.macro_f() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_accuracy_zero() {
        assert_eq!(MulticlassConfusion::new(4).accuracy(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_class_panics() {
        let mut m = MulticlassConfusion::new(2);
        m.record(2, 0, 1.0);
    }
}
