//! Weighted binary confusion matrix and derived rates.

use pnr_data::weights::approx;
use serde::{Deserialize, Serialize};

/// A weighted 2×2 confusion matrix for a binary (target vs rest) task.
///
/// All cells are weight sums, so the same type serves unit-weight and
/// stratified evaluations. Rates follow the paper's definitions: with `p`
/// target examples of which `q` are predicted correctly and `r` false
/// positives, recall `R = q/p` and precision `P = q/(q+r)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct BinaryConfusion {
    /// Weight of target records predicted target.
    pub tp: f64,
    /// Weight of non-target records predicted target.
    pub fp: f64,
    /// Weight of target records predicted non-target.
    pub fn_: f64,
    /// Weight of non-target records predicted non-target.
    pub tn: f64,
}

impl BinaryConfusion {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds directly from the four cells.
    pub fn from_counts(tp: f64, fp: f64, fn_: f64, tn: f64) -> Self {
        BinaryConfusion { tp, fp, fn_, tn }
    }

    /// Records one example with the given `weight`.
    pub fn record(&mut self, actual_positive: bool, predicted_positive: bool, weight: f64) {
        match (actual_positive, predicted_positive) {
            (true, true) => self.tp += weight,
            (false, true) => self.fp += weight,
            (true, false) => self.fn_ += weight,
            (false, false) => self.tn += weight,
        }
    }

    /// Merges another matrix into this one (e.g. per-shard evaluation).
    pub fn merge(&mut self, other: &BinaryConfusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }

    /// Total weight of actual positives `p = tp + fn`.
    pub fn actual_positive(&self) -> f64 {
        self.tp + self.fn_
    }

    /// Total weight of predicted positives `q + r = tp + fp`.
    pub fn predicted_positive(&self) -> f64 {
        self.tp + self.fp
    }

    /// Total recorded weight.
    pub fn total(&self) -> f64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Recall `R = tp / (tp + fn)`; 0 when there are no actual positives
    /// (the conservative convention for rare-class evaluation: a classifier
    /// scored on a positive-free sample earns nothing).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.actual_positive())
    }

    /// Precision `P = tp / (tp + fp)`; 0 when nothing is predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.predicted_positive())
    }

    /// Balanced F-measure `F = 2RP / (R + P)`; 0 when both R and P are 0.
    pub fn f_measure(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// General Fβ: `(1+β²)RP / (β²P + R)`. β > 1 weighs recall higher.
    pub fn f_beta(&self, beta: f64) -> f64 {
        assert!(beta > 0.0, "beta must be positive");
        let r = self.recall();
        let p = self.precision();
        let b2 = beta * beta;
        let denom = b2 * p + r;
        if approx::is_zero(denom) {
            0.0
        } else {
            (1.0 + b2) * p * r / denom
        }
    }

    /// Accuracy `(tp + tn) / total`; the metric the paper argues is
    /// inadequate for rare classes (kept for completeness).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// False-positive rate `fp / (fp + tn)`.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// A compact recall/precision/F snapshot.
    pub fn report(&self) -> PrfReport {
        PrfReport {
            recall: self.recall(),
            precision: self.precision(),
            f: self.f_measure(),
        }
    }
}

#[inline]
fn ratio(num: f64, den: f64) -> f64 {
    if approx::is_zero(den) {
        0.0
    } else {
        num / den
    }
}

/// Recall/precision/F triple, the row format of every result table in the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrfReport {
    /// Recall in `[0,1]`.
    pub recall: f64,
    /// Precision in `[0,1]`.
    pub precision: f64,
    /// Balanced F-measure in `[0,1]`.
    pub f: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let cm = BinaryConfusion::from_counts(5.0, 0.0, 0.0, 95.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.f_measure(), 1.0);
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn degenerate_all_negative_prediction() {
        // Predicting everything non-target on a 0.5% rare class: accuracy is
        // high but recall/precision/F are zero — the paper's motivating case.
        let cm = BinaryConfusion::from_counts(0.0, 0.0, 5.0, 995.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.f_measure(), 0.0);
        assert!(cm.accuracy() > 0.99);
    }

    #[test]
    fn empty_matrix_rates_are_zero() {
        let cm = BinaryConfusion::new();
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.f_measure(), 0.0);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn f_is_harmonic_mean() {
        let cm = BinaryConfusion::from_counts(30.0, 70.0, 10.0, 0.0);
        let r = cm.recall(); // 0.75
        let p = cm.precision(); // 0.3
        let expected = 2.0 * r * p / (r + p);
        assert!((cm.f_measure() - expected).abs() < 1e-12);
    }

    #[test]
    fn f_beta_extremes_track_components() {
        let cm = BinaryConfusion::from_counts(8.0, 2.0, 8.0, 100.0);
        let r = cm.recall(); // 0.5
        let p = cm.precision(); // 0.8
                                // large beta → recall-dominated, small beta → precision-dominated
        assert!((cm.f_beta(100.0) - r).abs() < 1e-2);
        assert!((cm.f_beta(0.01) - p).abs() < 1e-2);
        assert!((cm.f_beta(1.0) - cm.f_measure()).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn f_beta_rejects_nonpositive_beta() {
        BinaryConfusion::new().f_beta(0.0);
    }

    #[test]
    fn record_routes_to_correct_cell() {
        let mut cm = BinaryConfusion::new();
        cm.record(true, true, 1.0);
        cm.record(true, false, 2.0);
        cm.record(false, true, 3.0);
        cm.record(false, false, 4.0);
        assert_eq!((cm.tp, cm.fn_, cm.fp, cm.tn), (1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    fn merge_adds_cellwise() {
        let mut a = BinaryConfusion::from_counts(1.0, 2.0, 3.0, 4.0);
        let b = BinaryConfusion::from_counts(10.0, 20.0, 30.0, 40.0);
        a.merge(&b);
        assert_eq!(a, BinaryConfusion::from_counts(11.0, 22.0, 33.0, 44.0));
    }

    #[test]
    fn weighted_cells_affect_rates() {
        let mut cm = BinaryConfusion::new();
        cm.record(true, true, 10.0);
        cm.record(true, false, 30.0);
        assert_eq!(cm.recall(), 0.25);
    }

    #[test]
    fn false_positive_rate_ignores_positives() {
        let cm = BinaryConfusion::from_counts(100.0, 5.0, 100.0, 95.0);
        assert_eq!(cm.false_positive_rate(), 0.05);
    }

    #[test]
    fn report_matches_components() {
        let cm = BinaryConfusion::from_counts(3.0, 1.0, 1.0, 5.0);
        let rep = cm.report();
        assert_eq!(rep.recall, cm.recall());
        assert_eq!(rep.precision, cm.precision());
        assert_eq!(rep.f, cm.f_measure());
    }
}
