//! Fit/predict observability for the PNrule workspace.
//!
//! The learner crates accept one [`Arc<dyn TelemetrySink>`] and report two
//! kinds of signal through it:
//!
//! - **Phase spans** ([`SpanKind`]) — wall-clock timed sections opened and
//!   closed in strict stack (LIFO) order on the thread driving the fit:
//!   the whole fit, the P-phase, each P-rule growth, the N-phase, each
//!   N-rule growth, the ScoreMatrix build, each auto-tune grid cell, and
//!   a coarse span around each baseline (RIPPER/C4.5) fit.
//! - **Monotonic counters** ([`Counter`]) — totals that only ever grow:
//!   candidate conditions evaluated, candidate charges mirrored against
//!   the rules crate's `BudgetTracker`, `ViewIndex` warm projection hits
//!   vs cold builds, MDL-pruned N-rules, rows swept by the ScoreMatrix
//!   `first_match` pass, the serving layer's row accounting (rows
//!   scored vs quarantined, unseen-category and non-finite-numeric hits),
//!   and the scoring daemon's robustness accounting (requests served vs
//!   shed, deadline aborts, caught worker panics, model swaps vs rejected
//!   swaps).
//!
//! Two sinks are provided. [`NoopSink`] is the default everywhere: it
//! reports `enabled() == false`, so instrumented code skips label
//! formatting and never calls `Instant::now` — zero overhead on the hot
//! path. [`RecordingSink`] accumulates counters in fixed atomics and span
//! events in a mutex-guarded vector, and can export everything as NDJSON
//! (one JSON object per line; see [`RecordingSink::ndjson_lines`]).
//!
//! # Determinism
//!
//! Telemetry is strictly write-only for the learners: nothing ever reads
//! a counter or a span back into a learning decision, so a fit produces a
//! bit-identical model whether the sink records or not. Counters are
//! plain atomic additions and therefore order-independent under the
//! parallel condition search; spans are emitted only from the single
//! thread driving the fit, so their nesting is always well-formed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// Number of distinct [`Counter`]s (size of the recording array).
pub const N_COUNTERS: usize = 27;

/// Monotonic counter identities. Stored in a fixed array indexed by the
/// enum discriminant — deliberately not a hash map, so iteration order
/// (and thus NDJSON output order) is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Counter {
    /// Candidate conditions scored by the condition search (charged or
    /// not — this counts evaluation work, budget or no budget).
    ConditionsEvaluated,
    /// Candidates charged against a live `BudgetTracker`. Mirrors the
    /// tracker's own total exactly while the budget is un-exhausted;
    /// after exhaustion the tracker stops accepting charges and this
    /// counter stops with it.
    CandidateCharges,
    /// Numeric-attribute searches that found their sorted projection
    /// already materialised in the `ViewIndex`.
    ViewWarmHits,
    /// Numeric-attribute searches that had to build (or inherit-filter)
    /// a projection cold.
    ViewColdBuilds,
    /// N-rules discarded by MDL truncation.
    MdlPrunes,
    /// Rows swept by a `ScoreMatrix::build` `first_match` pass.
    FirstMatchRows,
    /// Records the serving layer scored successfully, abstentions
    /// included.
    RowsScored,
    /// Records the serving layer refused to score: structurally malformed
    /// rows quarantined by the CSV stream plus records rejected under
    /// `UnknownPolicy::Reject`.
    RowsQuarantined,
    /// Serve-time categorical values absent from the training dictionary.
    UnseenCategoryHits,
    /// Serve-time numeric values that were NaN or infinite.
    NanNumericHits,
    /// Records routed through the compiled rule-evaluation engine (one per
    /// record whose P/N routing ran on dispatch tables instead of the
    /// per-rule interpreter).
    CompiledDispatchHits,
    /// Scoring requests the daemon answered (success or typed per-record
    /// error — everything except a shed request).
    RequestsServed,
    /// Scoring requests rejected or dropped by queue backpressure before
    /// any scoring ran.
    RequestsShed,
    /// Requests (or request remainders) aborted because their wall-clock
    /// deadline expired before or during scoring.
    DeadlineExceeded,
    /// Worker panics caught by the daemon's isolation boundary; each one
    /// produced a typed error response and a respawned worker.
    WorkerPanics,
    /// Model hot-swaps that validated and published a new serving epoch.
    ModelSwaps,
    /// Hot-swap attempts rejected during off-path validation (corrupt
    /// artifact, bad schema, unreadable file); the old epoch kept serving.
    SwapFailures,
    /// Condition searches that took the threaded (attribute × shard)
    /// path. Sequential scans — too small, capped at one worker, or
    /// `parallel` off — don't tick this.
    ParallelSearchCalls,
    /// Worker threads spawned across all threaded searches; divided by
    /// `ParallelSearchCalls` this is the mean effective worker count, so
    /// sweeps read the real policy outcome instead of guessing.
    SearchWorkerThreads,
    /// Records the serving layer decided positive (target-class hits).
    /// Together with `RowsScored` this gives the per-window hit rate the
    /// drift detector monitors.
    DecisionPositives,
    /// Serving-stat windows the drift detector evaluated.
    DriftChecks,
    /// Windows whose drift verdict was `warn`.
    DriftWarnings,
    /// Windows whose drift verdict was `refit` (a refit was signalled).
    DriftRefitsSignalled,
    /// Windowed refit attempts started by the supervisor.
    RefitAttempts,
    /// Refit candidates that validated and were published via hot-swap.
    RefitPublishes,
    /// Refit attempts rolled back (fit failure, validation-recall
    /// regression, or publish failure); last-known-good kept serving.
    RefitRollbacks,
    /// Times serving entered the explicit degraded state.
    DegradedEntries,
}

impl Counter {
    /// All counters, in array/export order.
    pub const ALL: [Counter; N_COUNTERS] = [
        Counter::ConditionsEvaluated,
        Counter::CandidateCharges,
        Counter::ViewWarmHits,
        Counter::ViewColdBuilds,
        Counter::MdlPrunes,
        Counter::FirstMatchRows,
        Counter::RowsScored,
        Counter::RowsQuarantined,
        Counter::UnseenCategoryHits,
        Counter::NanNumericHits,
        Counter::CompiledDispatchHits,
        Counter::RequestsServed,
        Counter::RequestsShed,
        Counter::DeadlineExceeded,
        Counter::WorkerPanics,
        Counter::ModelSwaps,
        Counter::SwapFailures,
        Counter::ParallelSearchCalls,
        Counter::SearchWorkerThreads,
        Counter::DecisionPositives,
        Counter::DriftChecks,
        Counter::DriftWarnings,
        Counter::DriftRefitsSignalled,
        Counter::RefitAttempts,
        Counter::RefitPublishes,
        Counter::RefitRollbacks,
        Counter::DegradedEntries,
    ];

    /// Stable snake_case name used in NDJSON lines and rendered tables.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ConditionsEvaluated => "conditions_evaluated",
            Counter::CandidateCharges => "candidate_charges",
            Counter::ViewWarmHits => "view_warm_hits",
            Counter::ViewColdBuilds => "view_cold_builds",
            Counter::MdlPrunes => "mdl_prunes",
            Counter::FirstMatchRows => "first_match_rows",
            Counter::RowsScored => "rows_scored",
            Counter::RowsQuarantined => "rows_quarantined",
            Counter::UnseenCategoryHits => "unseen_category_hits",
            Counter::NanNumericHits => "nan_numeric_hits",
            Counter::CompiledDispatchHits => "compiled_dispatch_hits",
            Counter::RequestsServed => "requests_served",
            Counter::RequestsShed => "requests_shed",
            Counter::DeadlineExceeded => "deadline_exceeded",
            Counter::WorkerPanics => "worker_panics",
            Counter::ModelSwaps => "model_swaps",
            Counter::SwapFailures => "swap_failures",
            Counter::ParallelSearchCalls => "parallel_search_calls",
            Counter::SearchWorkerThreads => "search_worker_threads",
            Counter::DecisionPositives => "decision_positives",
            Counter::DriftChecks => "drift_checks",
            Counter::DriftWarnings => "drift_warnings",
            Counter::DriftRefitsSignalled => "drift_refits_signalled",
            Counter::RefitAttempts => "refit_attempts",
            Counter::RefitPublishes => "refit_publishes",
            Counter::RefitRollbacks => "refit_rollbacks",
            Counter::DegradedEntries => "degraded_entries",
        }
    }

    /// Index into the recording array.
    fn index(self) -> usize {
        self as usize
    }
}

/// Span identities, from coarsest to finest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// One whole `PnruleLearner` fit.
    Fit,
    /// The P-phase covering loop.
    PPhase,
    /// One P-rule growth (child of [`PPhase`](SpanKind::PPhase)).
    PRuleGrow,
    /// The N-phase covering loop.
    NPhase,
    /// One N-rule growth (child of [`NPhase`](SpanKind::NPhase)).
    NRuleGrow,
    /// One `ScoreMatrix::build`.
    ScoreMatrix,
    /// One auto-tune grid cell (wraps a whole nested fit).
    TuneCell,
    /// One baseline (RIPPER / C4.5) fit, coarse — no interior spans.
    BaselineFit,
    /// One scoring request handled by a serving-daemon worker (queue wait
    /// excluded; the span covers reconciliation + rule evaluation).
    ServeRequest,
    /// One hot-swap: artifact load + validation + epoch publication.
    ServeSwap,
    /// One drift-detector window evaluation.
    DriftCheck,
    /// One windowed refit fit (through the checkpointed pipeline).
    RefitFit,
    /// One candidate validation against the held-back slice.
    RefitValidate,
    /// One candidate publication (artifact save + hot-swap).
    RefitPublish,
}

impl SpanKind {
    /// Stable snake_case name used in NDJSON lines and rendered tables.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Fit => "fit",
            SpanKind::PPhase => "p_phase",
            SpanKind::PRuleGrow => "p_rule_grow",
            SpanKind::NPhase => "n_phase",
            SpanKind::NRuleGrow => "n_rule_grow",
            SpanKind::ScoreMatrix => "score_matrix",
            SpanKind::TuneCell => "tune_cell",
            SpanKind::BaselineFit => "baseline_fit",
            SpanKind::ServeRequest => "serve_request",
            SpanKind::ServeSwap => "serve_swap",
            SpanKind::DriftCheck => "drift_check",
            SpanKind::RefitFit => "refit_fit",
            SpanKind::RefitValidate => "refit_validate",
            SpanKind::RefitPublish => "refit_publish",
        }
    }

    /// True for the two mutually exclusive learner phases whose spans
    /// must never nest inside each other.
    fn is_exclusive_phase(self) -> bool {
        matches!(self, SpanKind::PPhase | SpanKind::NPhase)
    }
}

/// A telemetry receiver. Implementations must be cheap to call and must
/// never panic: the learners treat the sink as infallible.
///
/// The `enabled` flag is a *hint* for callers to skip work (label
/// formatting, `Instant::now`) before calling in; a disabled sink's
/// methods are still safe to call and simply do nothing.
pub trait TelemetrySink: Send + Sync + std::fmt::Debug {
    /// Whether this sink records anything. `false` lets callers skip all
    /// telemetry work on the hot path.
    fn enabled(&self) -> bool;
    /// Adds `n` to a monotonic counter.
    fn add(&self, counter: Counter, n: u64);
    /// Opens a span. Every open is matched by exactly one
    /// [`span_close`](Self::span_close) of the same kind, in LIFO order.
    fn span_open(&self, kind: SpanKind, label: &str);
    /// Closes the innermost open span of `kind` with its wall time.
    fn span_close(&self, kind: SpanKind, wall_ns: u64);
}

/// The zero-overhead default sink: records nothing, reports disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }
    fn add(&self, _counter: Counter, _n: u64) {}
    fn span_open(&self, _kind: SpanKind, _label: &str) {}
    fn span_close(&self, _kind: SpanKind, _wall_ns: u64) {}
}

/// The shared no-op sink every options struct defaults to. One static
/// allocation for the whole process; cloning is a refcount bump.
pub fn noop() -> Arc<dyn TelemetrySink> {
    static NOOP: OnceLock<Arc<NoopSink>> = OnceLock::new();
    NOOP.get_or_init(|| Arc::new(NoopSink)).clone()
}

/// RAII span guard: opens on [`Span::enter`], closes (with elapsed wall
/// time) on drop. Against a disabled sink it is fully inert — no
/// `span_open` call and no `Instant::now`.
#[must_use = "a span closes when dropped; binding it to `_` closes it immediately"]
pub struct Span<'a> {
    sink: &'a dyn TelemetrySink,
    kind: SpanKind,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Opens a span on `sink`. The label is only forwarded (and should
    /// only be formatted by the caller) when the sink is enabled.
    pub fn enter(sink: &'a dyn TelemetrySink, kind: SpanKind, label: &str) -> Span<'a> {
        if !sink.enabled() {
            return Span {
                sink,
                kind,
                start: None,
            };
        }
        sink.span_open(kind, label);
        Span {
            sink,
            kind,
            start: Some(Instant::now()),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.sink.span_close(self.kind, ns);
        }
    }
}

/// One raw span event as the sink received it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanEvent {
    /// A span opened.
    Open {
        /// Span identity.
        kind: SpanKind,
        /// Caller-supplied label, e.g. `"p0"` or `"rp=0.95 rn=0.90"`.
        label: String,
    },
    /// The innermost open span of `kind` closed.
    Close {
        /// Span identity.
        kind: SpanKind,
        /// Elapsed wall time in nanoseconds.
        wall_ns: u64,
    },
}

/// A matched open/close pair, produced by
/// [`RecordingSink::completed_spans`]. `depth` is the nesting depth at
/// open time (0 = top level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CompletedSpan {
    /// Span identity.
    pub kind: SpanKind,
    /// Caller-supplied label.
    pub label: String,
    /// Elapsed wall time in nanoseconds.
    pub wall_ns: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
}

/// An in-memory recording sink: fixed atomic counters plus an ordered
/// span-event log. Safe to share across the search's worker threads
/// (counters are atomics; the event vector is mutex-guarded and survives
/// a poisoned lock, since the data is diagnostics — never load-bearing).
#[derive(Debug, Default)]
pub struct RecordingSink {
    counters: [AtomicU64; N_COUNTERS],
    events: Mutex<Vec<SpanEvent>>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }

    fn lock_events(&self) -> MutexGuard<'_, Vec<SpanEvent>> {
        // Telemetry must never panic the learner: a poisoned lock just
        // means a panicking thread held it; the event log is still valid.
        self.events.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current value of one counter.
    pub fn value(&self, counter: Counter) -> u64 {
        self.counters[counter.index()].load(Ordering::Relaxed)
    }

    /// All counters with their current values, in [`Counter::ALL`] order.
    pub fn counter_values(&self) -> [(Counter, u64); N_COUNTERS] {
        Counter::ALL.map(|c| (c, self.value(c)))
    }

    /// A snapshot of the raw event log, in arrival order.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock_events().clone()
    }

    /// Matches opens to closes and returns completed spans in close
    /// order. Unmatched events (see [`nesting_error`]
    /// (Self::nesting_error)) are skipped rather than invented.
    pub fn completed_spans(&self) -> Vec<CompletedSpan> {
        let events = self.events();
        let mut stack: Vec<(SpanKind, String)> = Vec::new();
        let mut out = Vec::new();
        for ev in events {
            match ev {
                SpanEvent::Open { kind, label } => stack.push((kind, label)),
                SpanEvent::Close { kind, wall_ns } => {
                    if let Some((open_kind, label)) = stack.pop() {
                        if open_kind == kind {
                            out.push(CompletedSpan {
                                kind,
                                label,
                                wall_ns,
                                depth: stack.len(),
                            });
                        }
                    }
                }
            }
        }
        out
    }

    /// Validates span discipline: every close matches the innermost open
    /// of the same kind, every open is eventually closed, and the two
    /// exclusive learner phases (P-phase, N-phase) never nest inside one
    /// another. Returns `None` when well-formed, else a description of
    /// the first violation.
    pub fn nesting_error(&self) -> Option<String> {
        let events = self.events();
        let mut stack: Vec<SpanKind> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            match ev {
                SpanEvent::Open { kind, .. } => {
                    if kind.is_exclusive_phase() && stack.iter().any(|k| k.is_exclusive_phase()) {
                        return Some(format!(
                            "event {i}: {} opened while another learner phase is open",
                            kind.name()
                        ));
                    }
                    stack.push(*kind);
                }
                SpanEvent::Close { kind, .. } => match stack.pop() {
                    None => {
                        return Some(format!(
                            "event {i}: close of {} with no open span",
                            kind.name()
                        ))
                    }
                    Some(open) if open != *kind => {
                        return Some(format!(
                            "event {i}: close of {} but innermost open is {}",
                            kind.name(),
                            open.name()
                        ))
                    }
                    Some(_) => {}
                },
            }
        }
        if stack.is_empty() {
            None
        } else {
            Some(format!(
                "{} span(s) still open at end of recording",
                stack.len()
            ))
        }
    }

    /// Serializes the recording as NDJSON lines (no trailing newlines):
    /// first one `{"record":"counter",...}` line per counter in
    /// [`Counter::ALL`] order, then one `{"record":"span",...}` line per
    /// completed span in close order. Callers writing a file prepend
    /// their own metadata line(s).
    pub fn ndjson_lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (counter, value) in self.counter_values() {
            let line = CounterLine {
                record: "counter".to_owned(),
                name: counter.name().to_owned(),
                value,
            };
            if let Ok(json) = serde_json::to_string(&line) {
                lines.push(json);
            }
        }
        for span in self.completed_spans() {
            let line = SpanLine {
                record: "span".to_owned(),
                kind: span.kind.name().to_owned(),
                label: span.label,
                depth: span.depth,
                wall_ns: span.wall_ns,
            };
            if let Ok(json) = serde_json::to_string(&line) {
                lines.push(json);
            }
        }
        lines
    }
}

impl TelemetrySink for RecordingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&self, counter: Counter, n: u64) {
        self.counters[counter.index()].fetch_add(n, Ordering::Relaxed);
    }

    fn span_open(&self, kind: SpanKind, label: &str) {
        self.lock_events().push(SpanEvent::Open {
            kind,
            label: label.to_owned(),
        });
    }

    fn span_close(&self, kind: SpanKind, wall_ns: u64) {
        self.lock_events().push(SpanEvent::Close { kind, wall_ns });
    }
}

/// NDJSON schema for one counter line.
#[derive(Debug, Serialize)]
struct CounterLine {
    record: String,
    name: String,
    value: u64,
}

/// NDJSON schema for one completed-span line.
#[derive(Debug, Serialize)]
struct SpanLine {
    record: String,
    kind: String,
    label: String,
    depth: usize,
    wall_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.add(Counter::MdlPrunes, 5);
        sink.span_open(SpanKind::Fit, "x");
        sink.span_close(SpanKind::Fit, 1);
        // the shared handle reports disabled too
        assert!(!noop().enabled());
    }

    #[test]
    fn span_guard_skips_disabled_sinks() {
        let sink = NoopSink;
        let span = Span::enter(&sink, SpanKind::Fit, "x");
        assert!(span.start.is_none(), "disabled sink must not start a clock");
        drop(span);
    }

    #[test]
    fn counters_accumulate_per_identity() {
        let sink = RecordingSink::new();
        sink.add(Counter::ConditionsEvaluated, 3);
        sink.add(Counter::ConditionsEvaluated, 4);
        sink.add(Counter::MdlPrunes, 1);
        assert_eq!(sink.value(Counter::ConditionsEvaluated), 7);
        assert_eq!(sink.value(Counter::MdlPrunes), 1);
        assert_eq!(sink.value(Counter::CandidateCharges), 0);
        let values = sink.counter_values();
        assert_eq!(values.len(), N_COUNTERS);
        assert_eq!(values[0], (Counter::ConditionsEvaluated, 7));
    }

    #[test]
    fn spans_nest_and_complete_in_close_order() {
        let sink = RecordingSink::new();
        {
            let _fit = Span::enter(&sink, SpanKind::Fit, "fit");
            {
                let _p = Span::enter(&sink, SpanKind::PPhase, "p");
                let _grow = Span::enter(&sink, SpanKind::PRuleGrow, "p0");
            }
            let _n = Span::enter(&sink, SpanKind::NPhase, "n");
        }
        assert_eq!(sink.nesting_error(), None);
        let spans = sink.completed_spans();
        let kinds: Vec<SpanKind> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [
                SpanKind::PRuleGrow,
                SpanKind::PPhase,
                SpanKind::NPhase,
                SpanKind::Fit
            ]
        );
        assert_eq!(spans[0].depth, 2);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].depth, 1);
        assert_eq!(spans[3].depth, 0);
        assert_eq!(spans[0].label, "p0");
    }

    #[test]
    fn nesting_errors_are_reported() {
        let dangling = RecordingSink::new();
        dangling.span_open(SpanKind::Fit, "f");
        assert!(dangling.nesting_error().is_some(), "unclosed span");

        let orphan = RecordingSink::new();
        orphan.span_close(SpanKind::Fit, 1);
        assert!(orphan.nesting_error().is_some(), "close without open");

        let crossed = RecordingSink::new();
        crossed.span_open(SpanKind::PPhase, "p");
        crossed.span_close(SpanKind::NPhase, 1);
        assert!(crossed.nesting_error().is_some(), "kind mismatch");

        let interleaved = RecordingSink::new();
        interleaved.span_open(SpanKind::PPhase, "p");
        interleaved.span_open(SpanKind::NPhase, "n");
        assert!(
            interleaved.nesting_error().is_some(),
            "learner phases must not nest"
        );
    }

    #[test]
    fn ndjson_lines_cover_counters_then_spans() {
        let sink = RecordingSink::new();
        sink.add(Counter::CandidateCharges, 42);
        {
            let _fit = Span::enter(&sink, SpanKind::Fit, "cell \"a\"");
        }
        let lines = sink.ndjson_lines();
        assert_eq!(lines.len(), N_COUNTERS + 1);
        assert!(lines[0].contains("\"record\":\"counter\""));
        assert!(lines
            .iter()
            .any(|l| l.contains("\"candidate_charges\"") && l.contains("42")));
        let span_line = lines.last().map(String::as_str).unwrap_or("");
        assert!(span_line.contains("\"record\":\"span\""));
        assert!(span_line.contains("\"fit\""));
        // labels are JSON-escaped, so every line parses back
        for line in &lines {
            assert!(serde_json::parse(line).is_ok(), "unparseable line: {line}");
        }
    }

    #[test]
    fn counter_names_are_unique_and_stable() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), N_COUNTERS);
    }
}
