//! IREP* rule pruning.

use pnr_data::weights::approx;
use pnr_rules::{Rule, TaskView};

/// IREP*'s pruning value `v* = (p − n) / (p + n)` of a rule on the prune
/// split, where `p`/`n` are the covered positive/negative weights. Empty
/// coverage scores 0 (equivalent to a coin flip).
pub fn prune_value(p: f64, n: f64) -> f64 {
    if approx::is_zero(p + n) {
        0.0
    } else {
        (p - n) / (p + n)
    }
}

/// Generalises `rule` by deleting a **final sequence** of conditions: every
/// prefix (including the full rule) is scored with [`prune_value`] on the
/// prune split and the best-scoring prefix wins; ties prefer the shorter
/// rule (more general). The empty prefix is not considered — a rule that
/// would prune to nothing is the caller's signal to stop.
pub fn prune_rule(rule: &Rule, prune_view: &TaskView<'_>) -> (Rule, f64) {
    debug_assert!(!rule.is_empty(), "cannot prune an empty rule");
    let mut best_len = rule.len();
    let mut best_v = {
        let c = prune_view.coverage(rule);
        prune_value(c.pos, c.neg())
    };
    for len in (1..rule.len()).rev() {
        let prefix = rule.truncated(len);
        let c = prune_view.coverage(&prefix);
        let v = prune_value(c.pos, c.neg());
        if v >= best_v {
            best_v = v;
            best_len = len;
        }
    }
    (rule.truncated(best_len), best_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
    use pnr_rules::Condition;

    fn data() -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("noise", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..100 {
            let x = (i % 10) as f64;
            let noise = (i % 7) as f64;
            let target = x < 3.0;
            b.push_row(
                &[Value::num(x), Value::num(noise)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn prune_value_extremes() {
        assert_eq!(prune_value(10.0, 0.0), 1.0);
        assert_eq!(prune_value(0.0, 10.0), -1.0);
        assert_eq!(prune_value(5.0, 5.0), 0.0);
        assert_eq!(prune_value(0.0, 0.0), 0.0);
    }

    #[test]
    fn drops_overfitted_final_condition() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        // the second condition on `noise` is an overfit: it costs positives
        // without removing negatives
        let rule = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumLe {
                attr: 1,
                value: 3.0,
            },
        ]);
        let (pruned, v_star) = prune_rule(&rule, &v);
        assert_eq!(pruned.len(), 1, "noise condition must be pruned");
        assert_eq!(v_star, 1.0, "remaining rule is pure");
    }

    #[test]
    fn keeps_necessary_conditions() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let rule = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 2.0,
        }]);
        let (pruned, _) = prune_rule(&rule, &v);
        assert_eq!(pruned.len(), 1);
    }

    #[test]
    fn ties_prefer_shorter_rules() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        // duplicate condition: same coverage at both lengths → prune to 1
        let rule = Rule::new(vec![
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
            Condition::NumLe {
                attr: 0,
                value: 2.0,
            },
        ]);
        let (pruned, _) = prune_rule(&rule, &v);
        assert_eq!(pruned.len(), 1);
    }
}
