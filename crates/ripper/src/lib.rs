//! RIPPER (Repeated Incremental Pruning to Produce Error Reduction), the
//! paper's first baseline, reimplemented from Cohen (ICML 1995).
//!
//! The binary learner is **IREP\***: each rule is grown to purity on a
//! random two-thirds *grow* split (maximising FOIL's information gain) and
//! immediately generalised on the remaining *prune* split (maximising
//! `(p − n)/(p + n)` over final sequences of conditions). Rule addition
//! stops when the rule set's minimum-description-length exceeds the best
//! seen so far by 64 bits, or the new rule is worse than random on the
//! prune split. A post-pass deletes rules whose removal lowers the DL, and
//! `k` optimisation passes (default 2) re-grow a *replacement* and a
//! *revision* for every rule, keeping the variant that minimises the DL of
//! the whole set.
//!
//! The paper's critique lives exactly in this structure: each rule prunes
//! against only its own random third of an already-shrinking remainder
//! ("splintered false positives"), and the MDL pass tends to delete the
//! long, low-support rules that carry rare signatures ("small disjuncts").
//!
//! # Example
//!
//! ```
//! use pnr_data::{DatasetBuilder, AttrType, Value};
//! use pnr_ripper::{RipperLearner, RipperParams};
//! use pnr_rules::BinaryClassifier;
//!
//! let mut b = DatasetBuilder::new();
//! b.add_attribute("x", AttrType::Numeric);
//! for i in 0..200 {
//!     let x = (i % 20) as f64;
//!     b.push_row(&[Value::num(x)], if x < 5.0 { "pos" } else { "neg" }, 1.0).unwrap();
//! }
//! let data = b.finish();
//! let target = data.class_code("pos").unwrap();
//! let model = RipperLearner::new(RipperParams::default()).fit(&data, target);
//! assert!(model.predict(&data, 0));
//! ```

mod irep;
mod model;
mod optimize;
mod params;
mod prune;

pub use irep::grow_rule_foil;
pub use model::RipperModel;
pub use params::RipperParams;
pub use prune::prune_rule;

use pnr_data::Dataset;
use pnr_rules::TaskView;
use pnr_telemetry::{Span, SpanKind, TelemetrySink};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The RIPPER learner.
#[derive(Debug, Clone)]
pub struct RipperLearner {
    params: RipperParams,
    sink: Arc<dyn TelemetrySink>,
}

impl Default for RipperLearner {
    fn default() -> Self {
        RipperLearner {
            params: RipperParams::default(),
            sink: pnr_telemetry::noop(),
        }
    }
}

impl RipperLearner {
    /// A learner with the given parameters.
    pub fn new(params: RipperParams) -> Self {
        params.validate();
        RipperLearner {
            params,
            sink: pnr_telemetry::noop(),
        }
    }

    /// Attaches a telemetry sink; each fit is wrapped in one coarse
    /// baseline-fit span. Write-only: the model is identical whatever sink
    /// is attached.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.sink = sink;
        self
    }

    /// The learner's parameters.
    pub fn params(&self) -> &RipperParams {
        &self.params
    }

    /// Fits a binary rule set for `target` against the rest.
    pub fn fit(&self, data: &Dataset, target: u32) -> RipperModel {
        let _fit_span = Span::enter(self.sink.as_ref(), SpanKind::BaselineFit, "ripper");
        let is_pos: Vec<bool> = (0..data.n_rows())
            .map(|r| data.label(r) == target)
            .collect();
        let weights = data.weights();
        let view = TaskView::full(data, &is_pos, weights);
        let mut rng = StdRng::seed_from_u64(self.params.seed);
        irep::fit_irep_star(&view, &self.params, target, &mut rng)
    }
}
