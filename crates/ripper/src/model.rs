//! The trained RIPPER model.

use pnr_data::{Dataset, Schema};
use pnr_rules::{BinaryClassifier, RuleSet, TaskView};
use serde::{Deserialize, Serialize};

/// A binary RIPPER rule set: a record is predicted target iff any rule
/// matches (the implicit default rule predicts non-target).
///
/// Scores are the training-time Laplace accuracy of the first matching
/// rule, so the model slots into threshold-based evaluation alongside
/// PNrule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RipperModel {
    target: u32,
    rules: RuleSet,
    /// Laplace accuracy of each rule, estimated on the training data at
    /// fit time (first-match attribution).
    rule_scores: Vec<f64>,
}

impl RipperModel {
    /// Builds the model and estimates per-rule scores on the training view.
    pub(crate) fn from_rules(view: &TaskView<'_>, rules: RuleSet, target: u32) -> Self {
        let mut pos = vec![0.0f64; rules.len()];
        let mut tot = vec![0.0f64; rules.len()];
        for r in view.rows.iter() {
            let row = r as usize;
            if let Some(i) = rules.first_match(view.data, row) {
                let w = view.weights[row];
                tot[i] += w;
                if view.is_pos[row] {
                    pos[i] += w;
                }
            }
        }
        let rule_scores = pos
            .iter()
            .zip(&tot)
            .map(|(p, t)| (p + 1.0) / (t + 2.0))
            .collect();
        RipperModel {
            target,
            rules,
            rule_scores,
        }
    }

    /// The learned rules in order.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// The class code this model detects.
    pub fn target(&self) -> u32 {
        self.target
    }

    /// Training-time Laplace accuracy of each rule.
    pub fn rule_scores(&self) -> &[f64] {
        &self.rule_scores
    }

    /// Human-readable rendering.
    pub fn describe(&self, schema: &Schema) -> String {
        format!(
            "RIPPER model: {} rules\n{}",
            self.rules.len(),
            self.rules.display_lines(schema)
        )
    }
}

impl BinaryClassifier for RipperModel {
    fn score(&self, data: &Dataset, row: usize) -> f64 {
        match self.rules.first_match(data, row) {
            Some(i) => self.rule_scores[i],
            None => 0.0,
        }
    }

    fn predict(&self, data: &Dataset, row: usize) -> bool {
        // RIPPER's decision is crisp: any matching rule predicts target.
        self.rules.any_match(data, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RipperLearner, RipperParams};
    use pnr_data::{stratify_weights, AttrType, DatasetBuilder, Value};
    use pnr_rules::evaluate_classifier;

    fn band_data(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n {
            let x = (i % 20) as f64;
            let k = if (i / 20) % 3 == 0 { "a" } else { "b" };
            let target = x < 4.0 && k == "a";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn learns_clean_conjunction() {
        let d = band_data(900);
        let target = d.class_code("pos").unwrap();
        let model = RipperLearner::new(RipperParams::default()).fit(&d, target);
        let cm = evaluate_classifier(&model, &d, target);
        assert!(cm.recall() > 0.95, "recall {}", cm.recall());
        assert!(cm.precision() > 0.95, "precision {}", cm.precision());
    }

    #[test]
    fn generalises_to_fresh_sample() {
        let train = band_data(900);
        let test = band_data(300);
        let target = train.class_code("pos").unwrap();
        let model = RipperLearner::new(RipperParams::default()).fit(&train, target);
        let cm = evaluate_classifier(&model, &test, target);
        assert!(cm.f_measure() > 0.9, "F {}", cm.f_measure());
    }

    #[test]
    fn stratified_weights_are_honoured() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let w = stratify_weights(&d, target);
        let model = RipperLearner::default().fit(&d.with_weights(w), target);
        let cm = evaluate_classifier(&model, &d, target);
        assert!(
            cm.recall() > 0.9,
            "stratification should push recall, got {}",
            cm.recall()
        );
    }

    #[test]
    fn score_is_zero_without_match() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let model = RipperLearner::default().fit(&d, target);
        let neg_row = (0..d.n_rows()).find(|&r| d.num(0, r) > 10.0).unwrap();
        assert_eq!(model.score(&d, neg_row), 0.0);
        assert!(!model.predict(&d, neg_row));
    }

    #[test]
    fn determinism_under_fixed_seed() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let m1 = RipperLearner::default().fit(&d, target);
        let m2 = RipperLearner::default().fit(&d, target);
        assert_eq!(m1.rules(), m2.rules());
    }

    #[test]
    fn describe_mentions_rule_count() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let model = RipperLearner::default().fit(&d, target);
        assert!(model.describe(d.schema()).contains("RIPPER model"));
    }

    #[test]
    fn serde_round_trip() {
        let d = band_data(600);
        let target = d.class_code("pos").unwrap();
        let model = RipperLearner::default().fit(&d, target);
        let json = serde_json::to_string(&model).unwrap();
        let back: RipperModel = serde_json::from_str(&json).unwrap();
        for row in 0..d.n_rows() {
            assert_eq!(back.predict(&d, row), model.predict(&d, row));
        }
    }
}
