//! RIPPER parameters.

use serde::{Deserialize, Serialize};

/// Tunables of [`crate::RipperLearner`]. The defaults reproduce the "default
/// recommended settings" the paper uses for its comparisons.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RipperParams {
    /// Number of optimisation passes over the rule set (Cohen's `k`;
    /// RIPPER*k*). Default 2.
    pub k_optimizations: usize,
    /// Fraction of the remaining data used as the *prune* split each
    /// iteration (Cohen: one third).
    pub prune_frac: f64,
    /// MDL slack: stop adding rules when the set's description length
    /// exceeds the minimum seen so far by this many bits.
    pub mdl_slack_bits: f64,
    /// Seed of the grow/prune splits (the only stochastic element).
    pub seed: u64,
    /// Safety cap on the number of rules.
    pub max_rules: usize,
    /// Safety cap on rule length during growth.
    pub max_rule_len: usize,
}

impl Default for RipperParams {
    fn default() -> Self {
        RipperParams {
            k_optimizations: 2,
            prune_frac: 1.0 / 3.0,
            mdl_slack_bits: 64.0,
            seed: 0xA11CE,
            max_rules: 200,
            max_rule_len: 32,
        }
    }
}

impl RipperParams {
    /// Panics if a parameter is out of range.
    pub fn validate(&self) {
        assert!(
            self.prune_frac > 0.0 && self.prune_frac < 1.0,
            "prune_frac must be in (0,1), got {}",
            self.prune_frac
        );
        assert!(
            self.mdl_slack_bits >= 0.0,
            "mdl_slack_bits must be non-negative"
        );
        assert!(self.max_rules > 0, "max_rules must be positive");
        assert!(self.max_rule_len > 0, "max_rule_len must be positive");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        RipperParams::default().validate();
    }

    #[test]
    #[should_panic(expected = "prune_frac")]
    fn bad_prune_frac_panics() {
        RipperParams {
            prune_frac: 1.0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn serde_round_trip() {
        let p = RipperParams {
            k_optimizations: 4,
            ..Default::default()
        };
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<RipperParams>(&json).unwrap(), p);
    }
}
