//! IREP* — grow/prune rule induction with MDL stopping.

use crate::model::RipperModel;
use crate::optimize::optimize_ruleset;
use crate::params::RipperParams;
use crate::prune::prune_rule;
use pnr_data::RowSet;
use pnr_rules::mdl::{count_possible_conditions, total_dl};
use pnr_rules::{find_best_condition, EvalMetric, Rule, RuleSet, SearchOptions, TaskView};
use rand::seq::SliceRandom;
use rand::Rng;

/// Grows a rule to purity on `grow_view`, adding the condition with maximum
/// FOIL information gain each step. One-sided numeric tests only (RIPPER
/// has no explicit range conditions). Stops at purity, at zero gain, or at
/// `max_len`.
pub fn grow_rule_foil(grow_view: &TaskView<'_>, max_len: usize) -> Option<Rule> {
    let opts = SearchOptions {
        use_ranges: false,
        ..Default::default()
    };
    let mut rule = Rule::empty();
    let mut current = grow_view.clone();
    while rule.len() < max_len {
        // FOIL gain is computed against the data still covered by the rule,
        // which is exactly `current`'s own distribution.
        let Some(cand) = find_best_condition(&current, EvalMetric::FoilGain, &opts) else {
            break;
        };
        if cand.score <= 0.0 {
            break;
        }
        let matched = current.rows_matching(&cand.condition);
        rule.push(cand.condition);
        current = current.restricted_to(matched);
        if current.pos_weight() >= current.total_weight() {
            break; // pure
        }
    }
    if rule.is_empty() {
        None
    } else {
        Some(rule)
    }
}

/// Stratified random split of a view's rows into (grow, prune) with
/// `1 − prune_frac` of each class in the grow part.
pub(crate) fn grow_prune_split<R: Rng>(
    view: &TaskView<'_>,
    prune_frac: f64,
    rng: &mut R,
) -> (RowSet, RowSet) {
    let mut pos_rows: Vec<u32> = Vec::new();
    let mut neg_rows: Vec<u32> = Vec::new();
    for r in view.rows.iter() {
        if view.is_pos[r as usize] {
            pos_rows.push(r);
        } else {
            neg_rows.push(r);
        }
    }
    let mut grow = Vec::with_capacity(view.n_rows());
    let mut prune = Vec::with_capacity(view.n_rows());
    for rows in [&mut pos_rows, &mut neg_rows] {
        rows.shuffle(rng);
        let n_grow = ((rows.len() as f64) * (1.0 - prune_frac)).round() as usize;
        grow.extend_from_slice(&rows[..n_grow.min(rows.len())]);
        prune.extend_from_slice(&rows[n_grow.min(rows.len())..]);
    }
    (RowSet::from_vec(grow), RowSet::from_vec(prune))
}

/// Bookkeeping for the DL of a rule set over the full training view.
pub(crate) struct DlContext {
    pub n_possible: f64,
    pub pos_total: f64,
    pub n_total: f64,
}

impl DlContext {
    pub fn new(view: &TaskView<'_>) -> Self {
        DlContext {
            n_possible: count_possible_conditions(view.data),
            pos_total: view.pos_weight(),
            n_total: view.total_weight(),
        }
    }

    /// DL of `rules` as a predictor of the target class over the full view.
    pub fn ruleset_dl(&self, view: &TaskView<'_>, rules: &[Rule]) -> f64 {
        let mut covered = 0.0;
        let mut covered_pos = 0.0;
        for r in view.rows.iter() {
            let row = r as usize;
            if rules.iter().any(|rule| rule.matches(view.data, row)) {
                let w = view.weights[row];
                covered += w; // lint:allow(unordered-float-sum) — single pass in row-set order
                if view.is_pos[row] {
                    covered_pos += w; // lint:allow(unordered-float-sum) — same ordered pass
                }
            }
        }
        let fp = covered - covered_pos;
        let fn_ = self.pos_total - covered_pos;
        let lens: Vec<usize> = rules.iter().map(|r| r.len()).collect();
        total_dl(
            self.n_possible,
            &lens,
            covered,
            self.n_total - covered,
            fp,
            fn_,
        )
    }
}

/// The full IREP* + optimisation pipeline.
pub(crate) fn fit_irep_star<R: Rng>(
    view: &TaskView<'_>,
    params: &RipperParams,
    target: u32,
    rng: &mut R,
) -> RipperModel {
    let dl_ctx = DlContext::new(view);
    let mut rules = build_rules(view, params, &dl_ctx, Vec::new(), rng);

    for _ in 0..params.k_optimizations {
        rules = optimize_ruleset(view, params, &dl_ctx, rules, rng);
        // Residual pass: cover positives the optimised set lost.
        rules = build_rules(view, params, &dl_ctx, rules, rng);
    }
    rules = delete_rules_by_dl(view, &dl_ctx, rules);

    RipperModel::from_rules(view, RuleSet::from_rules(rules), target)
}

/// Adds rules to `rules` (possibly empty) until the MDL criterion stops it.
pub(crate) fn build_rules<R: Rng>(
    view: &TaskView<'_>,
    params: &RipperParams,
    dl_ctx: &DlContext,
    mut rules: Vec<Rule>,
    rng: &mut R,
) -> Vec<Rule> {
    // Remaining = rows not covered by current rules.
    let covered: RowSet = view
        .rows
        .filter(|r| rules.iter().any(|rule| rule.matches(view.data, r as usize)));
    let mut remaining = view.without(&covered);

    let mut min_dl = dl_ctx.ruleset_dl(view, &rules);
    while rules.len() < params.max_rules && remaining.pos_weight() > 0.0 {
        let (grow_rows, prune_rows) = grow_prune_split(&remaining, params.prune_frac, rng);
        let grow_view = remaining.restricted_to(grow_rows);
        let prune_view = remaining.restricted_to(prune_rows);
        if grow_view.pos_weight() <= 0.0 {
            break;
        }
        let Some(raw) = grow_rule_foil(&grow_view, params.max_rule_len) else {
            break;
        };
        let (rule, v_star) = if prune_view.is_empty() {
            (raw, 1.0)
        } else {
            prune_rule(&raw, &prune_view)
        };
        // "Worse than random on the prune data" check (accuracy ≤ 50%).
        if v_star < 0.0 {
            break;
        }
        rules.push(rule.clone());
        let dl = dl_ctx.ruleset_dl(view, &rules);
        if dl > min_dl + params.mdl_slack_bits {
            rules.pop();
            break;
        }
        min_dl = min_dl.min(dl);
        let covered_now = remaining.rows_matching_rule(&rule);
        if covered_now.is_empty() {
            rules.pop();
            break;
        }
        remaining = remaining.without(&covered_now);
    }
    rules
}

/// Examines each rule in reverse order and deletes it when the deletion
/// reduces the rule set's description length.
pub(crate) fn delete_rules_by_dl(
    view: &TaskView<'_>,
    dl_ctx: &DlContext,
    mut rules: Vec<Rule>,
) -> Vec<Rule> {
    let mut current_dl = dl_ctx.ruleset_dl(view, &rules);
    let mut i = rules.len();
    while i > 0 {
        i -= 1;
        let removed = rules.remove(i);
        let dl = dl_ctx.ruleset_dl(view, &rules);
        if dl < current_dl {
            current_dl = dl; // keep the deletion
        } else {
            rules.insert(i, removed);
        }
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn band_data(n: usize) -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_attribute("k", AttrType::Categorical);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..n {
            let x = (i % 20) as f64;
            let k = if (i / 20) % 3 == 0 { "a" } else { "b" };
            let target = x < 4.0 && k == "a";
            b.push_row(
                &[Value::num(x), Value::cat(k)],
                if target { "pos" } else { "neg" },
                1.0,
            )
            .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn foil_growth_reaches_purity() {
        let (d, is_pos) = band_data(600);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let rule = grow_rule_foil(&v, 32).expect("rule grown");
        let c = v.coverage(&rule);
        assert_eq!(c.neg(), 0.0, "grown rule must be pure: {:?}", rule);
        assert!(c.pos > 0.0);
    }

    #[test]
    fn growth_respects_max_len() {
        let (d, is_pos) = band_data(600);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let rule = grow_rule_foil(&v, 1).unwrap();
        assert_eq!(rule.len(), 1);
    }

    #[test]
    fn split_is_stratified() {
        let (d, is_pos) = band_data(600);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let mut rng = StdRng::seed_from_u64(1);
        let (grow, prune) = grow_prune_split(&v, 1.0 / 3.0, &mut rng);
        assert_eq!(grow.len() + prune.len(), v.n_rows());
        let pos_in = |rs: &RowSet| rs.iter().filter(|&r| is_pos[r as usize]).count();
        let total_pos = pos_in(&grow) + pos_in(&prune);
        // grow side holds ~2/3 of the positives
        let frac = pos_in(&grow) as f64 / total_pos as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.05, "grow pos fraction {frac}");
    }

    #[test]
    fn dl_deletion_removes_noise_rules() {
        let (d, is_pos) = band_data(600);
        let v = TaskView::full(&d, &is_pos, d.weights());
        let dl_ctx = DlContext::new(&v);
        let good = grow_rule_foil(&v, 32).unwrap();
        // a junk rule covering mostly negatives
        let junk = Rule::new(vec![pnr_rules::Condition::NumGt {
            attr: 0,
            value: 10.0,
        }]);
        let kept = delete_rules_by_dl(&v, &dl_ctx, vec![good.clone(), junk]);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0], good);
    }

    #[test]
    fn empty_positive_class_yields_empty_model() {
        let (d, _) = band_data(100);
        let none = vec![false; d.n_rows()];
        let v = TaskView::full(&d, &none, d.weights());
        let mut rng = StdRng::seed_from_u64(0);
        let model = fit_irep_star(&v, &RipperParams::default(), 0, &mut rng);
        assert!(model.rules().is_empty());
    }
}
