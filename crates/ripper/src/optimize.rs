//! RIPPER's rule-set optimisation pass.
//!
//! For each rule in turn, two candidate variants are produced on a fresh
//! grow/prune split: a **replacement** grown from scratch and a **revision**
//! grown from the existing rule. Both are pruned to minimise the error of
//! the *entire* rule set on the prune split (with the variant standing in
//! for the original rule), and the variant giving the lowest total
//! description length of the set is kept.

use crate::irep::{grow_prune_split, grow_rule_foil, DlContext};
use crate::params::RipperParams;
use pnr_rules::{Rule, TaskView};
use rand::Rng;

/// Error (fp + fn weight) of a rule set on `view` when `candidate` stands at
/// position `idx` (a `None` candidate means the rule is deleted).
fn ruleset_error(view: &TaskView<'_>, rules: &[Rule], idx: usize, candidate: Option<&Rule>) -> f64 {
    let mut fp = 0.0;
    let mut fn_ = 0.0;
    for r in view.rows.iter() {
        let row = r as usize;
        let mut covered = false;
        for (i, rule) in rules.iter().enumerate() {
            let m = if i == idx {
                match candidate {
                    Some(c) => c.matches(view.data, row),
                    None => false,
                }
            } else {
                rule.matches(view.data, row)
            };
            if m {
                covered = true;
                break;
            }
        }
        let w = view.weights[row];
        if covered && !view.is_pos[row] {
            fp += w; // lint:allow(unordered-float-sum) — single pass in row-set order
        } else if !covered && view.is_pos[row] {
            fn_ += w; // lint:allow(unordered-float-sum) — same ordered pass
        }
    }
    fp + fn_
}

/// Prunes `rule` (final-sequence) to minimise whole-set error on the prune
/// view with the rule standing at position `idx`.
fn prune_for_set(prune_view: &TaskView<'_>, rules: &[Rule], idx: usize, rule: &Rule) -> Rule {
    if rule.is_empty() {
        return rule.clone();
    }
    let mut best = rule.clone();
    let mut best_err = ruleset_error(prune_view, rules, idx, Some(rule));
    for len in (1..rule.len()).rev() {
        let prefix = rule.truncated(len);
        let err = ruleset_error(prune_view, rules, idx, Some(&prefix));
        if err <= best_err {
            best_err = err;
            best = prefix;
        }
    }
    best
}

/// One optimisation pass (Cohen's RIPPER step 2).
pub(crate) fn optimize_ruleset<R: Rng>(
    view: &TaskView<'_>,
    params: &RipperParams,
    dl_ctx: &DlContext,
    mut rules: Vec<Rule>,
    rng: &mut R,
) -> Vec<Rule> {
    for idx in 0..rules.len() {
        let (grow_rows, prune_rows) = grow_prune_split(view, params.prune_frac, rng);
        let grow_view = view.restricted_to(grow_rows);
        let prune_view = view.restricted_to(prune_rows);

        // Replacement: grow from scratch on the rows not covered by the
        // *other* rules, so it targets the residual this rule is
        // responsible for.
        let others_covered = grow_view.rows.filter(|r| {
            rules
                .iter()
                .enumerate()
                .any(|(i, rule)| i != idx && rule.matches(view.data, r as usize))
        });
        let residual_view = grow_view.without(&others_covered);
        let replacement = grow_rule_foil(&residual_view, params.max_rule_len)
            .map(|r| prune_for_set(&prune_view, &rules, idx, &r));

        // Revision: extend the existing rule with further FOIL growth on
        // the rows it covers in the grow split.
        let revision = {
            let covered = grow_view.rows_matching_rule(&rules[idx]);
            let rule_view = grow_view.restricted_to(covered);
            let extension = grow_rule_foil(&rule_view, params.max_rule_len);
            let mut revised = rules[idx].clone();
            if let Some(ext) = extension {
                for c in ext.conditions() {
                    revised.push(c.clone());
                }
            }
            prune_for_set(&prune_view, &rules, idx, &revised)
        };

        // Keep the variant that minimises the DL of the whole set.
        let mut candidates: Vec<Rule> = vec![rules[idx].clone(), revision];
        if let Some(rep) = replacement {
            candidates.push(rep);
        }
        let mut best = rules[idx].clone();
        let mut best_dl = f64::INFINITY;
        for cand in candidates {
            let mut trial = rules.clone();
            trial[idx] = cand.clone();
            let dl = dl_ctx.ruleset_dl(view, &trial);
            if dl < best_dl {
                best_dl = dl;
                best = cand;
            }
        }
        rules[idx] = best;
    }
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
    use pnr_rules::Condition;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn data() -> (Dataset, Vec<bool>) {
        let mut b = DatasetBuilder::new();
        b.add_attribute("x", AttrType::Numeric);
        b.add_class("pos");
        b.add_class("neg");
        for i in 0..300 {
            let x = (i % 20) as f64;
            b.push_row(&[Value::num(x)], if x < 5.0 { "pos" } else { "neg" }, 1.0)
                .unwrap();
        }
        let d = b.finish();
        let is_pos: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
        (d, is_pos)
    }

    #[test]
    fn ruleset_error_counts_fp_and_fn() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        // rule covering everything: fp = all negatives
        let all = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 100.0,
        }]);
        let err = ruleset_error(&v, std::slice::from_ref(&all), 0, Some(&all));
        assert_eq!(err, 225.0); // 15/20 of 300 are negative
                                // deleting the rule: fn = all positives
        let err = ruleset_error(&v, std::slice::from_ref(&all), 0, None);
        assert_eq!(err, 75.0);
    }

    #[test]
    fn optimization_improves_or_keeps_a_sloppy_rule() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let dl_ctx = DlContext::new(&v);
        // deliberately sloppy rule: covers ~half the negatives too
        let sloppy = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 12.0,
        }]);
        let before_dl = dl_ctx.ruleset_dl(&v, std::slice::from_ref(&sloppy));
        let mut rng = StdRng::seed_from_u64(42);
        let optimized = optimize_ruleset(
            &v,
            &RipperParams::default(),
            &dl_ctx,
            vec![sloppy],
            &mut rng,
        );
        let after_dl = dl_ctx.ruleset_dl(&v, &optimized);
        assert!(
            after_dl <= before_dl,
            "DL must not increase: {after_dl} vs {before_dl}"
        );
        // the optimised rule should be the clean band
        let c = v.coverage(&optimized[0]);
        assert_eq!(
            c.neg(),
            0.0,
            "optimised rule should be pure, got {:?}",
            optimized[0]
        );
    }

    #[test]
    fn optimization_preserves_rule_count() {
        let (d, is_pos) = data();
        let v = TaskView::full(&d, &is_pos, d.weights());
        let dl_ctx = DlContext::new(&v);
        let r1 = Rule::new(vec![Condition::NumLe {
            attr: 0,
            value: 4.0,
        }]);
        let mut rng = StdRng::seed_from_u64(7);
        let optimized = optimize_ruleset(&v, &RipperParams::default(), &dl_ctx, vec![r1], &mut rng);
        assert_eq!(optimized.len(), 1);
    }
}
