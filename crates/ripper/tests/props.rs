//! Property-based tests for RIPPER's sub-procedures.

use pnr_data::{AttrType, Dataset, DatasetBuilder, Value};
use pnr_ripper::{grow_rule_foil, prune_rule, RipperLearner, RipperParams};
use pnr_rules::{BinaryClassifier, Condition, Rule, TaskView};
use proptest::prelude::*;

fn dataset(rows: &[(f64, bool)]) -> (Dataset, Vec<bool>) {
    let mut b = DatasetBuilder::new();
    b.add_attribute("x", AttrType::Numeric);
    b.add_class("pos");
    b.add_class("neg");
    for &(x, p) in rows {
        b.push_row(&[Value::num(x)], if p { "pos" } else { "neg" }, 1.0)
            .unwrap();
    }
    let d = b.finish();
    let flags: Vec<bool> = (0..d.n_rows()).map(|r| d.label(r) == 0).collect();
    (d, flags)
}

fn rows() -> impl Strategy<Value = Vec<(f64, bool)>> {
    prop::collection::vec((-30.0f64..30.0, prop::bool::ANY), 6..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grown_rules_cover_at_least_one_positive(data_rows in rows()) {
        let (d, flags) = dataset(&data_rows);
        let v = TaskView::full(&d, &flags, d.weights());
        if let Some(rule) = grow_rule_foil(&v, 16) {
            let c = v.coverage(&rule);
            prop_assert!(c.pos > 0.0, "grown rule covers no positives");
            prop_assert!(rule.len() <= 16);
        }
    }

    #[test]
    fn pruning_never_reduces_prune_set_value(data_rows in rows(), t in -30.0f64..30.0, t2 in -30.0f64..30.0) {
        let (d, flags) = dataset(&data_rows);
        let v = TaskView::full(&d, &flags, d.weights());
        let rule = Rule::new(vec![
            Condition::NumLe { attr: 0, value: t },
            Condition::NumGt { attr: 0, value: t2 },
        ]);
        let c0 = v.coverage(&rule);
        let v0 = if c0.total == 0.0 { 0.0 } else { (c0.pos - c0.neg()) / c0.total };
        let (pruned, v_star) = prune_rule(&rule, &v);
        prop_assert!(v_star + 1e-9 >= v0, "pruned value {v_star} below original {v0}");
        prop_assert!(!pruned.is_empty() && pruned.len() <= rule.len());
    }

    #[test]
    fn model_predictions_are_crisp_and_bounded(data_rows in rows()) {
        let (d, _) = dataset(&data_rows);
        let model = RipperLearner::new(RipperParams::default()).fit(&d, 0);
        for row in 0..d.n_rows() {
            let s = model.score(&d, row);
            prop_assert!((0.0..=1.0).contains(&s));
            // prediction implies a rule matched, which implies score > 0
            if model.predict(&d, row) {
                prop_assert!(s > 0.0);
            }
        }
    }

    #[test]
    fn seed_determinism(data_rows in rows(), seed in 0u64..500) {
        let (d, _) = dataset(&data_rows);
        let params = RipperParams { seed, ..Default::default() };
        let m1 = RipperLearner::new(params.clone()).fit(&d, 0);
        let m2 = RipperLearner::new(params).fit(&d, 0);
        prop_assert_eq!(m1.rules(), m2.rules());
    }

    #[test]
    fn separable_data_is_learned(split in -20.0f64..20.0, n in 30usize..120) {
        let rows: Vec<(f64, bool)> = (0..n)
            .map(|i| {
                let off = 1.0 + (i % 13) as f64;
                if i % 2 == 0 { (split - off, true) } else { (split + off, false) }
            })
            .collect();
        let (d, _) = dataset(&rows);
        let model = RipperLearner::new(RipperParams::default()).fit(&d, 0);
        let correct = (0..d.n_rows())
            .filter(|&r| model.predict(&d, r) == (d.label(r) == 0))
            .count();
        prop_assert!(
            correct as f64 / d.n_rows() as f64 > 0.9,
            "separable accuracy {}",
            correct as f64 / d.n_rows() as f64
        );
    }
}
